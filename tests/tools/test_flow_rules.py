"""Tests for the whole-program flow pass (``tools/repro_lint/flow``).

Each flow rule (RPR009-012) is exercised against its good/bad fixture pair,
against targeted inline programs (escape hatches, interprocedural proofs,
cross-file resolution), and against the real ``src/`` tree: the
``_procpool.pack()`` split-lifetime contract that used to carry an RPR004
suppression must now be *proven* by RPR012.
"""

import json
import textwrap
from pathlib import Path

import pytest

from tools.repro_lint import run_paths
from tools.repro_lint.cli import main
from tools.repro_lint.engine import ENGINE_RULE_ID
from tools.repro_lint.flow import FLOW_RULE_IDS, FLOW_RULES
from tools.repro_lint.reporting import to_json_payload

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]

#: rule id -> (bad fixture, good fixture, expected finding count in bad).
FLOW_FIXTURE_PAIRS = {
    "RPR009": ("rpr009_bad.py", "rpr009_good.py", 3),
    "RPR010": ("rpr010_bad.py", "rpr010_good.py", 2),
    "RPR011": ("rpr011_bad.py", "rpr011_good.py", 3),
    "RPR012": ("rpr012_bad.py", "rpr012_good.py", 2),
}

#: The seeded bug classes from the issue, each caught by its intended rule.
SEEDED_BUGS = {
    "unguarded ring-buffer write": ("rpr009_bad.py", "RPR009"),
    "two-cache lock inversion": ("rpr010_bad.py", "RPR010"),
    "post-submit mutation": ("rpr011_bad.py", "RPR011"),
    "leaked shm handle": ("rpr012_bad.py", "RPR012"),
}


def lint_flow(*names, flow=True, jobs=1):
    return run_paths([str(FIXTURES / name) for name in names],
                     flow=flow, jobs=jobs)


def lint_source(tmp_path, source, name="prog.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return run_paths([str(path)])


class TestFlowFixtures:
    @pytest.mark.parametrize("rule_id", sorted(FLOW_FIXTURE_PAIRS))
    def test_bad_fixture_fires(self, rule_id):
        bad, _good, expected_count = FLOW_FIXTURE_PAIRS[rule_id]
        violations = lint_flow(bad).violations
        fired = [v for v in violations if v.rule == rule_id]
        assert len(fired) == expected_count, (
            f"{bad} should trip {rule_id} x{expected_count}, got: "
            f"{[(v.rule, v.line) for v in violations]}")
        assert all(len(v.message) > 40 for v in fired)

    @pytest.mark.parametrize("rule_id", sorted(FLOW_FIXTURE_PAIRS))
    def test_good_fixture_stays_quiet(self, rule_id):
        _bad, good, _count = FLOW_FIXTURE_PAIRS[rule_id]
        violations = lint_flow(good).violations
        assert violations == [], (
            f"{good} should be clean, got: "
            f"{[(v.rule, v.line, v.message) for v in violations]}")

    @pytest.mark.parametrize("bug", sorted(SEEDED_BUGS))
    def test_seeded_bug_caught_by_intended_rule(self, bug):
        fixture, rule_id = SEEDED_BUGS[bug]
        fired = {v.rule for v in lint_flow(fixture).violations}
        assert rule_id in fired, f"{bug} ({fixture}) must be caught by {rule_id}"
        assert fired == {rule_id}, (
            f"{fixture} should only trip {rule_id}, got {sorted(fired)}")

    def test_flow_rule_metadata_is_complete(self):
        assert FLOW_RULE_IDS == {"RPR009", "RPR010", "RPR011", "RPR012",
                                 "RPR013", "RPR014", "RPR015", "RPR016",
                                 "RPR017"}
        for rule in FLOW_RULES:
            assert rule.id.startswith("RPR") and len(rule.id) == 6
            assert rule.name and rule.summary and rule.motivation


class TestGuardedByInference:
    def test_interprocedural_locked_caller_proof(self, tmp_path):
        result = lint_source(tmp_path, """\
            import threading

            class Ring:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []

                def _evict(self):
                    self._items.clear()

                def reset(self):
                    with self._lock:
                        self._evict()
            """)
        assert result.violations == []

    def test_unlocked_caller_breaks_the_proof(self, tmp_path):
        result = lint_source(tmp_path, """\
            import threading

            class Ring:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []

                def _evict(self):
                    self._items.clear()

                def reset(self):
                    with self._lock:
                        self._evict()

                def reset_unlocked(self):
                    self._evict()
            """)
        assert [v.rule for v in result.violations] == ["RPR009"]

    def test_locked_suffix_escape_hatch(self, tmp_path):
        result = lint_source(tmp_path, """\
            import threading

            class Ring:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []

                def _evict_locked(self):
                    self._items.clear()
            """)
        assert result.violations == []

    def test_guarded_by_def_annotation(self, tmp_path):
        result = lint_source(tmp_path, """\
            import threading

            class Ring:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []

                def _evict(self):  # guarded-by: _lock
                    self._items.clear()
            """)
        assert result.violations == []

    def test_guarded_by_none_opts_an_attribute_out(self, tmp_path):
        result = lint_source(tmp_path, """\
            import threading

            class Ring:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []  # guarded-by: none

                def peek(self):
                    return list(self._items)
            """)
        assert result.violations == []

    def test_inline_suppression_silences_a_flow_finding(self, tmp_path):
        result = lint_source(tmp_path, """\
            import threading

            class Ring:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []

                def peek(self):
                    return list(self._items)  # repro-lint: disable=RPR009 -- benign racy len estimate
            """)
        assert result.violations == []


class TestLockOrder:
    def test_cross_file_lock_inversion(self, tmp_path):
        (tmp_path / "a.py").write_text(textwrap.dedent("""\
            import threading
            import b

            LOCK_A = threading.Lock()

            def take_a():
                with LOCK_A:
                    pass

            def a_then_b():
                with LOCK_A:
                    b.take_b()
            """), encoding="utf-8")
        (tmp_path / "b.py").write_text(textwrap.dedent("""\
            import threading
            import a

            LOCK_B = threading.Lock()

            def take_b():
                with LOCK_B:
                    pass

            def b_then_a():
                with LOCK_B:
                    a.take_a()
            """), encoding="utf-8")
        result = run_paths([str(tmp_path)])
        assert [v.rule for v in result.violations] == ["RPR010"]
        assert "LOCK_A" in result.violations[0].message
        assert "LOCK_B" in result.violations[0].message


class TestExecutorEscape:
    def test_keyword_captured_argument_is_checked(self, tmp_path):
        result = lint_source(tmp_path, """\
            def run(executor, task, items):
                pending = list(items)
                future = executor.submit(task, batch=pending)
                pending.append(None)
                return future
            """)
        assert [v.rule for v in result.violations] == ["RPR011"]

    def test_thread_pool_nested_class_is_not_a_pickling_hazard(self, tmp_path):
        result = lint_source(tmp_path, """\
            from concurrent.futures import ThreadPoolExecutor

            def run(task, values):
                class Job:
                    def __init__(self, payload):
                        self.payload = payload

                with ThreadPoolExecutor() as pool:
                    return pool.submit(task, Job(values)).result()
            """)
        assert result.violations == []


class TestShmLifetime:
    def test_two_level_return_propagation_is_proven(self, tmp_path):
        result = lint_source(tmp_path, """\
            from multiprocessing import shared_memory

            def allocate(nbytes):
                segment = shared_memory.SharedMemory(create=True, size=nbytes)
                return segment

            def wrap(nbytes):
                segment = allocate(nbytes)
                return segment

            def run(nbytes):
                segment = wrap(nbytes)
                try:
                    return segment.name
                finally:
                    segment.unlink()
            """)
        assert result.violations == []

    def test_discarded_result_is_flagged_at_the_call_site(self, tmp_path):
        result = lint_source(tmp_path, """\
            from multiprocessing import shared_memory

            def allocate(nbytes):
                segment = shared_memory.SharedMemory(create=True, size=nbytes)
                return segment

            def run(nbytes):
                allocate(nbytes)
            """)
        assert [v.rule for v in result.violations] == ["RPR012"]
        assert result.violations[0].line == 8

    def test_procpool_pack_contract_is_proven_without_suppression(self):
        procpool = REPO_ROOT / "src" / "repro" / "api" / "_procpool.py"
        source = procpool.read_text(encoding="utf-8")
        assert "disable=RPR004" not in source, (
            "the reasoned RPR004 suppression must stay retired: RPR012's "
            "cross-function proof replaces it")
        result = run_paths([str(REPO_ROOT / "src")])
        shm_findings = [v for v in result.violations
                        if v.rule in ("RPR004", "RPR012")]
        assert shm_findings == []

    def test_no_flow_restores_the_per_file_rpr004(self):
        bad = str(FIXTURES / "rpr004_bad.py")
        with_flow = run_paths([bad], flow=True)
        without_flow = run_paths([bad], flow=False)
        assert {v.rule for v in with_flow.violations} == {"RPR012"}
        assert {v.rule for v in without_flow.violations} == {"RPR004"}


class TestEngineModes:
    def test_no_flow_disables_flow_rules(self):
        result = lint_flow("rpr009_bad.py", flow=False)
        assert result.violations == []
        assert result.flow is False

    def test_parallel_jobs_match_serial_results(self):
        names = [bad for bad, _good, _n in FLOW_FIXTURE_PAIRS.values()]
        names += [good for _bad, good, _n in FLOW_FIXTURE_PAIRS.values()]
        serial = lint_flow(*names, jobs=1)
        parallel = lint_flow(*names, jobs=2)
        assert serial.violations == parallel.violations
        assert serial.files_checked == parallel.files_checked == len(names)

    def test_unparseable_file_reports_path_and_exits_2(self, tmp_path, capsys):
        broken = tmp_path / "broken.py"
        broken.write_text("def broken(:\n", encoding="utf-8")
        result = run_paths([str(broken)])
        assert result.exit_code == 2
        assert result.parse_failures == 1
        assert [v.rule for v in result.violations] == [ENGINE_RULE_ID]
        assert main([str(broken)]) == 2
        out = capsys.readouterr().out
        assert "broken.py" in out
        assert "could not be parsed" in out

    def test_json_payload_carries_flow_fields(self):
        payload = to_json_payload(lint_flow("suppressed.py"))
        assert payload["flow"] is True
        assert payload["parse_failures"] == 0
        counts = payload["suppression_counts"]
        assert list(counts.values()) == [1]
        assert next(iter(counts)).endswith("suppressed.py")


class TestSuppressionBudget:
    def _budget(self, tmp_path, limit):
        budget = tmp_path / "budget.json"
        prefix = (FIXTURES / "suppressed.py").parent.as_posix()
        budget.write_text(json.dumps({prefix: limit}), encoding="utf-8")
        return str(budget)

    def test_within_budget_passes(self, tmp_path, capsys):
        code = main([str(FIXTURES / "suppressed.py"),
                     "--suppression-budget", self._budget(tmp_path, 1)])
        assert code == 0
        assert "budget" not in capsys.readouterr().err

    def test_exceeded_budget_fails(self, tmp_path, capsys):
        code = main([str(FIXTURES / "suppressed.py"),
                     "--suppression-budget", self._budget(tmp_path, 0)])
        assert code == 1
        err = capsys.readouterr().err
        assert "suppression budget exceeded" in err
        assert "budget.json" in err

    def test_unreadable_budget_is_a_usage_error(self, tmp_path, capsys):
        code = main([str(FIXTURES / "suppressed.py"),
                     "--suppression-budget", str(tmp_path / "missing.json")])
        assert code == 2
        assert "suppression budget" in capsys.readouterr().err

    def test_committed_budget_matches_the_tree(self):
        budget_path = REPO_ROOT / "tools" / "repro_lint" / \
            "suppression_budget.json"
        budget = json.loads(budget_path.read_text(encoding="utf-8"))
        path_keys = {key for key in budget if not key.startswith("RPR")}
        rule_keys = set(budget) - path_keys
        assert path_keys == {"src", "tests", "benchmarks"}
        assert rule_keys == {"RPR013", "RPR014", "RPR015", "RPR016",
                             "RPR017", "RPR018"}
        result = run_paths([str(REPO_ROOT / prefix)
                            for prefix in sorted(path_keys)])
        for prefix in sorted(path_keys):
            allowed = budget[prefix]
            actual = sum(
                count for path, count in result.waivers_by_path.items()
                if f"/{prefix}/" in path or path.startswith(f"{prefix}/"))
            assert actual <= allowed, (
                f"{actual} waiver(s) under {prefix}/ exceed the committed "
                f"budget of {allowed}; remove them or update "
                f"tools/repro_lint/suppression_budget.json deliberately")
        for prefix in sorted(rule_keys):
            actual = sum(count for rule, count
                         in result.waivers_by_rule.items()
                         if rule.startswith(prefix))
            assert actual <= budget[prefix], (
                f"{actual} waiver(s) naming {prefix} exceed the committed "
                f"budget of {budget[prefix]}; fix the finding instead of "
                f"waiving a numerics rule")
