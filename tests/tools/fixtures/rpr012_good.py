"""RPR012 must stay quiet: the split-lifetime pack/run/release contract.

``pack`` creates the segment and returns it (plus a name handle) to its
caller; ``run`` releases it in a ``finally`` through the shared releaser
helper.  This is the _procpool-style pattern the per-file RPR004 needed a
suppression for -- the cross-function proof accepts it as written.
"""

from multiprocessing import shared_memory

import numpy as np


def _release_segment(segment: shared_memory.SharedMemory) -> None:
    try:
        segment.close()
    finally:
        segment.unlink()


def pack(values: np.ndarray) -> tuple[shared_memory.SharedMemory, str]:
    segment = shared_memory.SharedMemory(create=True, size=values.nbytes)
    target = np.ndarray(values.shape, dtype=values.dtype, buffer=segment.buf)
    target[:] = values
    return segment, segment.name


def run(values: np.ndarray) -> list:
    segment, name = pack(values)
    try:
        view = shared_memory.SharedMemory(name=name)
        data = list(np.ndarray(values.shape, dtype=values.dtype,
                               buffer=view.buf))
        view.close()
        return data
    finally:
        _release_segment(segment)


def local_lifetime(values: np.ndarray) -> list:
    segment = shared_memory.SharedMemory(create=True, size=values.nbytes)
    try:
        target = np.ndarray(values.shape, dtype=values.dtype,
                            buffer=segment.buf)
        target[:] = values
        return list(target)
    finally:
        segment.unlink()
