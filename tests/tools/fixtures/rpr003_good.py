"""RPR003 good fixture: every cache mutation holds the lock."""

import threading
from collections import OrderedDict


class LockedCache:
    def __init__(self):
        self._entries = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key, compute):
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                return entry
        value = compute()
        with self._lock:
            self._entries[key] = value
            if len(self._entries) > 8:
                self._entries.popitem(last=False)
        return value

    def clear(self):
        with self._lock:
            self._entries.clear()
