"""Bad fixture: float32 silently meets float64 (RPR014).

Seeds the silent-upcast bug class: one wide operand and the whole
expression runs -- and allocates -- in float64, erasing the narrow
path's bandwidth win without any test failing.
"""

import numpy as np


def mixed_product(n):
    narrow = np.zeros(n, dtype=np.float32)
    wide = np.ones(n, dtype=np.float64)
    scaled = narrow * wide
    return np.dot(narrow, wide) + scaled
