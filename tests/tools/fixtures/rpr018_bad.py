"""RPR018 bad fixture: retry loops missing a bound or a backoff."""

import time


def fetch_without_attempt_bound(connect):
    while True:  # retries forever: no attempt budget anywhere
        try:
            return connect()
        except OSError:
            time.sleep(0.1)


def fetch_without_backoff(connect, max_retries):
    attempt = 0
    while True:  # bounded, but hammers the endpoint with no backoff
        try:
            return connect()
        except ConnectionError:
            attempt += 1
            if attempt >= max_retries:
                raise
