"""Bad fixture: uninitialized reads and axis-less reductions (RPR017).

Seeds the empty-read bug class: an np.empty buffer flows into results
before any element is written, and an axis-less mean collapses the
batch axis together with the feature axis.
"""

import numpy as np


def uninitialized_readout():
    buffer = np.empty(4)
    return buffer * 2.0


def collapsed_average():
    grid = np.zeros((8, 360))
    return np.mean(grid)
