"""Bad fixture: nondeterministic numerics (RPR016).

Seeds the unseeded-rng bug class: legacy global-state np.random calls
whose stream any import can reorder, plus an unseeded generator in
test scope feeding a bit-exact comparison.
"""

import numpy as np


def legacy_noise(n):
    np.random.seed(1234)
    return np.random.normal(size=n)


def unseeded_stream():
    return np.random.default_rng()
