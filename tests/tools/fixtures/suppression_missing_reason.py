"""Suppression fixture: a waiver without a reason is not honored."""

import numpy as np


def intentional_drifty_grid(start, stop, step):
    return np.arange(start, stop, step / 2)  # repro-lint: disable=RPR001
