"""RPR018 good fixture: bounded, backed-off, or not a retry loop at all."""

import time


def fetch_with_bound_and_backoff(connect, max_retries):
    attempt = 0
    while True:
        try:
            return connect()
        except OSError:
            attempt += 1
            if attempt >= max_retries:
                raise
            time.sleep(min(0.05 * 2 ** attempt, 2.0))


def drain_first_failure_exits(queue):
    # Not a retry loop: the handler always leaves the loop.
    while queue:
        try:
            queue.pop()
        except IndexError:
            raise RuntimeError("queue drained concurrently") from None


def countdown_without_try(step):
    # A plain bounded loop with no exception handling is out of scope.
    remaining = 10
    while remaining:
        step()
        remaining -= 1
