"""RPR008 good fixture: the facade, plus a shim file that may self-reference."""

import warnings


def localize_everything(service, spectra_by_client):
    return service.localize_many(spectra_by_client)


def legacy_shim(server, spectra, client_id):
    # A module that itself issues DeprecationWarning is a shim; the rule
    # skips it so the deprecated implementation can exist somewhere.
    warnings.warn("legacy_shim() is deprecated; use localize_everything()",
                  DeprecationWarning, stacklevel=2)
    return server.localize_spectra(spectra, client_id)
