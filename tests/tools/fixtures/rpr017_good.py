"""Good fixture: initialized buffers and explicit axes (RPR017 quiet)."""

import numpy as np


def filled_readout():
    buffer = np.empty(4)
    buffer[:] = 0.0
    return buffer * 2.0


def out_parameter():
    buffer = np.empty(4)
    np.multiply(np.zeros(4), 2.0, out=buffer)
    return buffer


def per_axis_average():
    grid = np.zeros((8, 360))
    deliberate = np.mean(grid, axis=None)  # spelled out => deliberate
    return np.mean(grid, axis=0) + deliberate


def empty_placeholder():
    placeholder = np.empty((0, 4))
    return placeholder
