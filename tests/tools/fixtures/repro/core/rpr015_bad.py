"""Bad fixture: scalarized hot loops in core/ (RPR015).

Seeds the scalarized-loop bug class: per-element NumPy calls and
quadratic array growth inside the per-frame processing loop.
"""

import numpy as np


def scalarized_norms(rows):
    total = 0.0
    for i in range(len(rows)):
        total += float(np.abs(rows[i]).sum())
    return total


def grown_spectrum(values):
    spectrum = np.zeros(1)
    for value in values:
        spectrum = np.append(spectrum, value)
    return spectrum


def reconverted(values):
    stacked = np.zeros(0)
    collected = []
    for value in values:
        collected.append(value)
        stacked = np.array(collected)
    return stacked
