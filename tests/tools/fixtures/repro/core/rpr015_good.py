"""Good fixture: vectorized/preallocated counterparts of rpr015_bad."""

import numpy as np


def vectorized_norms(rows):
    return float(np.abs(rows).sum())


def collected_spectrum(values):
    collected = []
    for value in values:
        collected.append(value * 2.0)
    return np.array(collected)


def preallocated(values):
    out = np.zeros(len(values))
    for i, value in enumerate(values):
        out[i] = 2.0 * value
    return out
