"""Good fixture: the polymorphic/annotated counterparts of rpr013_bad."""

import numpy as np


def accumulate(values):
    values = np.asarray(values)
    return np.zeros(values.shape, dtype=values.dtype) + values


def reference_tone(num_samples):
    # dtype-pinned: complex128 -- synthesized reference is full precision by contract
    return np.zeros(num_samples, dtype=np.complex128)


def histogram_counts(values):
    del values
    return np.zeros(8, dtype=np.int64)


def _unreachable_debug_dump(values):
    return np.asarray(values, dtype=np.float64)
