"""Bad fixture: hard dtype pins on the public data path (RPR013).

Seeds the silent-upcast half of the historical arange-seam bug: the angle
grid and every coercion below force full width, so a float32 caller is
upcast without any test noticing.
"""

import numpy as np


def _coerce(values):
    return np.asarray(values, dtype=np.float64)


def spectrum_power(values):
    """Public root; makes the private ``_coerce`` pin reachable."""
    return _coerce(values) ** 2


def covariance(snapshots):
    snapshots = np.asarray(snapshots, dtype=np.complex128)
    return snapshots @ snapshots.conj().T


def angle_grid(num_points):
    # dtype-pinned: float64
    return np.linspace(0.0, 360.0, num_points, dtype=np.float64)
