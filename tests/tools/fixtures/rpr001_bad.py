"""RPR001 bad fixture: float-step arange grids (all three spellings)."""

import numpy as np
from numpy import arange


def endpoint_grid(xmin, xmax, res):
    return np.arange(xmin, xmax + res / 2.0, res)


def literal_step_grid():
    return np.arange(0.0, 180.0, 0.3)


def aliased_import_grid(start, stop, step_m):
    return arange(start, stop, step_m / 2)
