"""Good fixture: explicitly seeded modern generators (RPR016 quiet)."""

import numpy as np


def seeded_stream(seed=0):
    return np.random.default_rng(seed)


def seeded_noise(n, seed=0):
    rng = np.random.default_rng(np.random.SeedSequence(seed))
    return rng.normal(size=n)
