"""Suppression fixture: a real finding waived inline with a reason."""

import numpy as np


def intentional_drifty_grid(start, stop, step):
    return np.arange(start, stop, step / 2)  # repro-lint: disable=RPR001 -- fixture demonstrating a reasoned waiver
