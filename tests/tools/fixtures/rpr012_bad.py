"""RPR012 must fire: the seeded "leaked shm handle" bugs.

``allocate`` returns a live segment and its only caller, ``fill``, never
unlinks it -- the per-file RPR004 sees a clean-looking return and a clean
looking caller, only the cross-function proof fails.  ``local_leak`` has a
finally that closes but never unlinks: the mapping is released but the
segment stays in /dev/shm until reboot.  Expected: 2 violations.
"""

from multiprocessing import shared_memory

import numpy as np


def allocate(nbytes: int) -> shared_memory.SharedMemory:
    segment = shared_memory.SharedMemory(create=True, size=nbytes)
    return segment


def fill(values: np.ndarray) -> str:
    segment = allocate(values.nbytes)  # RPR012: never unlinked
    target = np.ndarray(values.shape, dtype=values.dtype, buffer=segment.buf)
    target[:] = values
    return segment.name


def local_leak(values: np.ndarray) -> list:
    segment = shared_memory.SharedMemory(create=True, size=values.nbytes)
    try:
        target = np.ndarray(values.shape, dtype=values.dtype,
                            buffer=segment.buf)
        target[:] = values
        return list(target)
    finally:
        segment.close()  # RPR012: close() without unlink() leaks /dev/shm
