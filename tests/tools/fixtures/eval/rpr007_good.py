"""RPR007 good fixture: validate the sample before any quantile runs."""

import numpy as np


def summarize(errors_cm):
    errors = np.asarray(errors_cm, dtype=float)
    if not np.all(np.isfinite(errors)):
        raise ValueError("error sample contains NaN/inf")
    return {
        "median_cm": float(np.median(errors)),
        "p95_cm": float(np.percentile(errors, 95)),
    }
