"""RPR007 bad fixture: quantiles in eval code with no NaN guard."""

import numpy as np


def summarize(errors_cm):
    return {
        "median_cm": float(np.median(errors_cm)),
        "p95_cm": float(np.percentile(errors_cm, 95)),
    }
