"""RPR010 must fire: the seeded "two-cache lock inversion".

``warm_forward`` nests steering -> bearing; ``warm_reverse`` holds the
bearing lock and calls ``_copy_back``, which takes the steering lock --
so the order graph has steering -> bearing -> steering, a cycle only the
interprocedural edge reveals.  ``double_acquire`` nests one non-reentrant
Lock inside itself.  Expected: 2 violations (one cycle, one self-nest).
"""

import threading


class SteeringTable:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._rows: dict[str, list[float]] = {}


class BearingTable:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._rows: dict[str, list[float]] = {}


def warm_forward(steering: SteeringTable, bearing: BearingTable) -> None:
    with steering._lock:
        with bearing._lock:
            bearing._rows.update(steering._rows)


def _copy_back(steering: SteeringTable, rows: dict) -> None:
    with steering._lock:
        steering._rows.update(rows)


def warm_reverse(steering: SteeringTable, bearing: BearingTable) -> None:
    with bearing._lock:
        _copy_back(steering, bearing._rows)


_REGISTRY_LOCK = threading.Lock()


def double_acquire() -> None:
    with _REGISTRY_LOCK:
        with _REGISTRY_LOCK:  # RPR010: non-reentrant self-nest
            pass
