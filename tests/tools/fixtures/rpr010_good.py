"""RPR010 must stay quiet: consistent acquisition order everywhere, and
re-entrant self-nesting through an RLock (which is legal)."""

import threading


class SteeringTable:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._rows: dict[str, list[float]] = {}


class BearingTable:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._rows: dict[str, list[float]] = {}


def warm_forward(steering: SteeringTable, bearing: BearingTable) -> None:
    with steering._lock:
        with bearing._lock:
            bearing._rows.update(steering._rows)


def _copy_back(bearing: BearingTable, rows: dict) -> None:
    with bearing._lock:
        bearing._rows.update(rows)


def warm_reverse(steering: SteeringTable, bearing: BearingTable) -> None:
    # Same steering -> bearing order as warm_forward: no inversion.
    with steering._lock:
        _copy_back(bearing, steering._rows)


class Recursive:
    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._depth = 0

    def outer(self) -> None:
        with self._lock:
            self._depth += 1
            with self._lock:  # RLock: re-entrant, fine
                self._depth += 1
