"""RPR009 must stay quiet: every guarded access holds the lock or uses a
sanctioned escape hatch (``_locked`` suffix, interprocedural proof via a
locked caller, ``# guarded-by:`` def annotation, ``# guarded-by: none``
attribute opt-out)."""

import threading
from collections import OrderedDict, deque


class FrameRing:
    def __init__(self, capacity: int) -> None:
        self._lock = threading.Lock()
        self._frames = deque(maxlen=capacity)
        self._dropped = 0

    def push(self, frame: object) -> None:
        with self._lock:
            if len(self._frames) == self._frames.maxlen:
                self._drop_oldest_locked()
            self._frames.append(frame)

    def _drop_oldest_locked(self) -> None:
        # ``_locked`` suffix: callers hold the lock (push() does).
        self._frames.popleft()
        self._dropped += 1

    def drain(self) -> list[object]:
        with self._lock:
            drained = list(self._frames)
            self._frames.clear()
            return drained


class TrimmingCache:
    def __init__(self, max_entries: int) -> None:
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, float] = OrderedDict()
        self.max_entries = max_entries
        # Diagnostics only, rebuilt wholesale by reset_stats: not guarded.
        self.last_eviction_key = None  # guarded-by: none

    def put(self, key: str, value: float) -> None:
        with self._lock:
            self._entries[key] = value
            self._trim()

    def _trim(self) -> None:  # guarded-by: _lock
        while len(self._entries) > self.max_entries:
            evicted, _ = self._entries.popitem(last=False)
            self.last_eviction_key = evicted

    def _evict_all(self) -> None:
        # No annotation needed: the only caller (clear) holds the lock,
        # which the interprocedural pass proves.
        self._entries.clear()

    def clear(self) -> None:
        with self._lock:
            self._evict_all()
