"""RPR006 bad fixture: bare excepts and swallowed broad handlers."""


def swallow_everything(task):
    try:
        return task()
    except:  # noqa: E722 -- the fixture demonstrates exactly this
        return None


def swallow_broad(task):
    try:
        return task()
    except Exception:
        pass
