"""RPR005 bad fixture: lambdas and local callables handed to executors."""

from concurrent.futures import ProcessPoolExecutor


def run_sharded(shards):
    results = []
    with ProcessPoolExecutor() as executor:
        for shard in shards:
            future = executor.submit(lambda: sum(shard))
            results.append(future.result())
    return results


def run_closure(shards, executor):
    def task(shard):
        return sum(shard)

    return [executor.submit(task, shard) for shard in shards]
