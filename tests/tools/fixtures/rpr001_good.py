"""RPR001 good fixture: exact-count linspace grids; integer aranges allowed."""

import numpy as np


def exact_count_grid(xmin, res, num):
    return np.linspace(xmin, xmin + res * (num - 1), num)


def integer_arange(num_elements):
    # Integer (and single-stop) aranges are exact: no accumulated step.
    indices = np.arange(num_elements, dtype=float)
    return np.arange(4.0), indices / 7.0


def integer_range_pair(rows):
    return np.arange(rows.shape[0], dtype=np.intp)
