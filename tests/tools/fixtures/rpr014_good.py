"""Good fixture: precision-matched arithmetic (RPR014 stays quiet)."""

import numpy as np


def matched_product(n):
    narrow = np.zeros(n, dtype=np.float32)
    other = np.ones(n, dtype=np.float32)
    scaled = narrow * other
    shifted = narrow + 1.0  # weak Python scalar adopts float32 (NEP 50)
    return np.dot(narrow, other) + scaled + shifted
