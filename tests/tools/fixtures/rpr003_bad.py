"""RPR003 bad fixture: OrderedDict cache mutated outside the lock."""

import threading
from collections import OrderedDict


class RacyCache:
    def __init__(self):
        self._entries = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key, compute):
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            return entry
        value = compute()
        self._entries[key] = value
        if len(self._entries) > 8:
            self._entries.popitem(last=False)
        return value
