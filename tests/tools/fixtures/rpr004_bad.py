"""RPR004 bad fixture: shared-memory segment with no finally-unlink."""

from multiprocessing import shared_memory


def leaky_pack(payload):
    segment = shared_memory.SharedMemory(create=True, size=len(payload))
    segment.buf[: len(payload)] = payload
    return segment.name
