"""RPR005 good fixture: module-level tasks pickle under spawn."""

from concurrent.futures import ProcessPoolExecutor


def shard_task(shard):
    return sum(shard)


def run_sharded(shards):
    with ProcessPoolExecutor() as executor:
        futures = [executor.submit(shard_task, shard) for shard in shards]
        return [future.result() for future in futures]


def unrelated_map(values):
    # .map() on a non-executor object is not a pool submission.
    return values.map(lambda value: value + 1)
