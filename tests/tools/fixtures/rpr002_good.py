"""RPR002 good fixture: solve the system instead of inverting."""

import numpy as np


def quadratic_form(covariance, steering):
    solved = np.linalg.solve(covariance, steering)
    return np.real(np.einsum("mk,mk->k", steering.conj(), solved))
