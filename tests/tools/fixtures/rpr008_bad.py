"""RPR008 bad fixture: new code on the deprecated entry points."""

from repro import quickstart


def localize_everything(server, spectra_by_client):
    quickstart.run_demo()
    return {client_id: server.localize_spectra(spectra, client_id)
            for client_id, spectra in spectra_by_client.items()}
