"""RPR006 good fixture: narrow handlers, and broad ones that handle."""

import logging


def tolerate_missing(path):
    try:
        with open(path, "rb") as handle:
            return handle.read()
    except FileNotFoundError:
        # Narrow pass-only handlers are an explicit, visible policy.
        pass
    return b""


def surface_worker_failure(task, exceptions):
    try:
        return task()
    except Exception as exc:
        logging.getLogger(__name__).exception("shard failed")
        exceptions.append(exc)
        raise
