"""RPR009 must fire: guarded attributes accessed without their lock.

``FrameRing`` is the seeded "unguarded ring-buffer write" bug: ``push``
establishes that ``_frames``/``_dropped`` are guarded by ``_lock``, then
``drain`` reads and clears the ring without it -- a reader racing ``push``
sees a half-updated ring and the clear loses concurrent pushes.
``StatsCache`` shows the container-default inference: the class owns one
lock, so its dict attribute is guarded even on the store path that never
mentions the lock.  Expected: 3 violations (lines flagged below).
"""

import threading
from collections import deque


class FrameRing:
    def __init__(self, capacity: int) -> None:
        self._lock = threading.Lock()
        self._frames = deque(maxlen=capacity)
        self._dropped = 0

    def push(self, frame: object) -> None:
        with self._lock:
            self._frames.append(frame)
            if len(self._frames) == self._frames.maxlen:
                self._dropped += 1

    def drain(self) -> list[object]:
        drained = list(self._frames)  # RPR009: read without the lock
        self._frames.clear()  # RPR009: write without the lock
        return drained


class StatsCache:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: dict[str, float] = {}

    def get(self, key: str) -> float | None:
        with self._lock:
            return self._entries.get(key)

    def put(self, key: str, value: float) -> None:
        self._entries[key] = value  # RPR009: store without the lock
