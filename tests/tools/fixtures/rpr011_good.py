"""RPR011 must stay quiet: snapshots before submit, rebinding (not
mutation) after submit, and module-level classes for process pools."""

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor


class ShardJob:
    def __init__(self, payload: tuple) -> None:
        self.payload = payload


def process(batch: tuple) -> int:
    return len(batch)


def snapshot_batch(executor: ThreadPoolExecutor, items: list) -> int:
    pending = []
    pending.extend(items)
    # The tuple() snapshot decouples the worker from later mutations.
    future = executor.submit(process, tuple(pending))
    pending.append("sentinel")
    return future.result()


def rebinding_loop(executor: ThreadPoolExecutor, frames: list) -> list:
    futures = []
    for frame in frames:
        window = (frame,)
        futures.append(executor.submit(process, window))
        window = ()  # rebinding, not in-place mutation: safe
    return [future.result() for future in futures]


def submit_module_level(values: tuple) -> int:
    job = ShardJob(values)
    with ProcessPoolExecutor() as pool:
        future = pool.submit(process, job)
    return future.result()
