"""RPR002 bad fixture: explicit matrix inversion."""

import numpy as np
from numpy.linalg import inv


def quadratic_form(covariance, steering):
    inverse = np.linalg.inv(covariance)
    return steering.conj().T @ inverse @ steering


def aliased_inverse(matrix):
    return inv(matrix)
