"""RPR011 must fire: the seeded "post-submit mutation" bugs.

``racing_batch`` mutates a submitted list after submit(); ``rolling_submit``
submits and mutates the same window inside one loop (iteration N's append
races iteration N-1's worker); ``submit_unpicklable`` ships an instance of
a function-local class to a process pool, which the spawn backend cannot
pickle.  Expected: 3 violations.
"""

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor


def process(batch: list) -> int:
    return len(batch)


def racing_batch(executor: ThreadPoolExecutor, items: list) -> None:
    pending = []
    pending.extend(items)
    future = executor.submit(process, pending)  # RPR011: mutated below
    pending.append("sentinel")
    future.result()


def rolling_submit(executor: ThreadPoolExecutor, frames: list) -> list:
    window: list = []
    futures = []
    for frame in frames:
        futures.append(executor.submit(process, window))  # RPR011: loop race
        window.append(frame)
    return [future.result() for future in futures]


def submit_unpicklable(values: list) -> int:
    class ShardJob:
        def __init__(self, payload: list) -> None:
            self.payload = payload

    job = ShardJob(values)
    with ProcessPoolExecutor() as pool:
        future = pool.submit(process, job)  # RPR011: nested class, no pickle
    return future.result()
