"""RPR004 good fixture: unlink reachable in a finally on every path."""

from multiprocessing import shared_memory


def safe_pack(payload, consume):
    segment = shared_memory.SharedMemory(create=True, size=len(payload))
    try:
        segment.buf[: len(payload)] = payload
        return consume(segment.name)
    finally:
        segment.close()
        segment.unlink()


def attach_only(name):
    # Attaching (create not passed / False) is not a creation site.
    return shared_memory.SharedMemory(name=name)
