"""Suppression fixture: naming an unknown rule id is itself reported."""

VALUE = 1  # repro-lint: disable=RPR999 -- no such rule exists
