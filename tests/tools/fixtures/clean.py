"""A file no rule has anything to say about."""

import numpy as np


def centroid(points):
    return np.mean(np.asarray(points, dtype=float), axis=0)
