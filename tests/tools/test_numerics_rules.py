"""Tests for the numerics flow pass (``tools/repro_lint/numerics``).

Each numerics rule (RPR013-017) is exercised against its good/bad fixture
pair, against targeted inline programs (annotation placement, dtype
preservation proofs, NEP 50 weak scalars), and against the real ``src/``
tree: the merged source must carry zero unwaived numerics findings and a
``dtype_surface`` with zero unproven entries -- the float32-readiness
contract of ROADMAP item 2.
"""

import textwrap
from pathlib import Path

import pytest

from tools.repro_lint import run_paths
from tools.repro_lint.numerics import DTYPE_PINNED_RE
from tools.repro_lint.reporting import to_json_payload

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]

#: rule id -> (bad fixture, good fixture, expected finding count in bad).
#: The rpr013/rpr015 pairs live in the fixtures/repro(/core) mirror because
#: those rules only apply to library-scoped paths.
NUMERICS_FIXTURE_PAIRS = {
    "RPR013": ("repro/rpr013_bad.py", "repro/rpr013_good.py", 3),
    "RPR014": ("rpr014_bad.py", "rpr014_good.py", 2),
    "RPR015": ("repro/core/rpr015_bad.py", "repro/core/rpr015_good.py", 3),
    "RPR016": ("rpr016_bad.py", "rpr016_good.py", 3),
    "RPR017": ("rpr017_bad.py", "rpr017_good.py", 2),
}

#: The seeded historical bug classes, each caught by its intended rule.
SEEDED_BUGS = {
    "arange-seam dtype pin": ("repro/rpr013_bad.py", "RPR013"),
    "silent float64 upcast": ("rpr014_bad.py", "RPR014"),
    "scalarized hot loop": ("repro/core/rpr015_bad.py", "RPR015"),
    "unseeded rng": ("rpr016_bad.py", "RPR016"),
    "empty-buffer read": ("rpr017_bad.py", "RPR017"),
}


def lint_flow(*names):
    return run_paths([str(FIXTURES / name) for name in names])


def lint_source(tmp_path, source, name="repro/core/prog.py"):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return run_paths([str(path)])


class TestNumericsFixtures:
    @pytest.mark.parametrize("rule_id", sorted(NUMERICS_FIXTURE_PAIRS))
    def test_bad_fixture_fires(self, rule_id):
        bad, _good, expected_count = NUMERICS_FIXTURE_PAIRS[rule_id]
        violations = lint_flow(bad).violations
        fired = [v for v in violations if v.rule == rule_id]
        assert len(fired) == expected_count, (
            f"{bad} should trip {rule_id} x{expected_count}, got: "
            f"{[(v.rule, v.line) for v in violations]}")
        assert all(len(v.message) > 40 for v in fired)

    @pytest.mark.parametrize("rule_id", sorted(NUMERICS_FIXTURE_PAIRS))
    def test_good_fixture_stays_quiet(self, rule_id):
        _bad, good, _count = NUMERICS_FIXTURE_PAIRS[rule_id]
        violations = lint_flow(good).violations
        assert violations == [], (
            f"{good} should be clean, got: "
            f"{[(v.rule, v.line, v.message) for v in violations]}")

    @pytest.mark.parametrize("bug", sorted(SEEDED_BUGS))
    def test_seeded_bug_caught_by_intended_rule(self, bug):
        fixture, rule_id = SEEDED_BUGS[bug]
        fired = {v.rule for v in lint_flow(fixture).violations}
        assert rule_id in fired, f"{bug} ({fixture}) must be caught by {rule_id}"
        assert fired == {rule_id}, (
            f"{fixture} should only trip {rule_id}, got {sorted(fired)}")

    def test_no_flow_skips_numerics(self):
        bad, _good, _count = NUMERICS_FIXTURE_PAIRS["RPR013"]
        result = run_paths([str(FIXTURES / bad)], flow=False)
        assert result.violations == []


class TestDtypePinAnnotations:
    def test_annotation_regex_requires_reason_to_satisfy(self):
        with_reason = DTYPE_PINNED_RE.search(
            "# dtype-pinned: float64 -- wire format is fixed")
        assert with_reason is not None
        assert with_reason.group(1) == "float64"
        assert with_reason.group(2) == "wire format is fixed"
        without = DTYPE_PINNED_RE.search("# dtype-pinned: float64")
        assert without is not None and not without.group(2)

    def test_def_line_annotation_covers_the_body(self, tmp_path):
        result = lint_source(tmp_path, """\
            import numpy as np


            def tone(n):  # dtype-pinned: complex128 -- synthesis contract
                return np.zeros(n, dtype=np.complex128)
            """)
        assert result.violations == []

    def test_preceding_line_annotation_is_honored(self, tmp_path):
        result = lint_source(tmp_path, """\
            import numpy as np


            def tone(n):
                # dtype-pinned: complex128 -- synthesis contract
                return np.zeros(n, dtype=np.complex128)
            """)
        assert result.violations == []

    def test_annotation_without_reason_still_fires(self, tmp_path):
        result = lint_source(tmp_path, """\
            import numpy as np


            def tone(n):
                return np.zeros(n, dtype=np.complex128)  # dtype-pinned: complex128
            """)
        fired = [v for v in result.violations if v.rule == "RPR013"]
        assert len(fired) == 1
        assert "missing the mandatory reason" in fired[0].message


class TestDtypePreservationProofs:
    def test_dynamic_dtype_is_not_a_pin(self, tmp_path):
        result = lint_source(tmp_path, """\
            import numpy as np


            def pad(values, n):
                values = np.asarray(values)
                return np.zeros(n, dtype=values.dtype) + values
            """)
        assert [v for v in result.violations if v.rule == "RPR013"] == []

    def test_repro_dtypes_helpers_preserve_and_are_exempt(self, tmp_path):
        result = lint_source(tmp_path, """\
            import numpy as np

            from repro.dtypes import as_complex_array


            def covariance(snapshots):
                snapshots = as_complex_array(snapshots)
                return snapshots @ snapshots.conj().T
            """)
        assert [v for v in result.violations if v.rule == "RPR013"] == []

    def test_integer_dtypes_are_not_precision_pins(self, tmp_path):
        result = lint_source(tmp_path, """\
            import numpy as np


            def counts(values):
                del values
                return np.zeros(16, dtype=np.int64)
            """)
        assert [v for v in result.violations if v.rule == "RPR013"] == []

    def test_weak_python_scalar_does_not_trip_rpr014(self, tmp_path):
        result = lint_source(tmp_path, """\
            import numpy as np


            def shift(n):
                narrow = np.zeros(n, dtype=np.float32)
                return narrow + 1.0
            """)
        assert [v for v in result.violations if v.rule == "RPR014"] == []


class TestChangedOnlyRestriction:
    def test_restrict_filters_flow_findings_to_changed_paths(self):
        bad = str(FIXTURES / "repro" / "rpr013_bad.py")
        unrestricted = run_paths([bad])
        assert any(v.rule == "RPR013" for v in unrestricted.violations)
        restricted = run_paths([bad], restrict=set())
        assert restricted.violations == []
        assert restricted.files_checked == 0
        kept = run_paths([bad], restrict={bad})
        assert {v.rule for v in kept.violations} == {"RPR013"}

    def test_restricted_run_still_sees_the_whole_program(self, tmp_path):
        # The pin lives in helper.py; only caller.py is "changed".  The
        # flow pass must still read helper.py to prove reachability, but
        # report nothing (the finding's path was not changed).
        helper = tmp_path / "repro" / "helper.py"
        helper.parent.mkdir(parents=True)
        helper.write_text(textwrap.dedent("""\
            import numpy as np


            def _coerce(values):
                return np.asarray(values, dtype=np.float64)
            """), encoding="utf-8")
        caller = tmp_path / "repro" / "caller.py"
        caller.write_text(textwrap.dedent("""\
            from repro.helper import _coerce


            def powers(values):
                return _coerce(values) ** 2
            """), encoding="utf-8")
        both = run_paths([str(tmp_path)])
        assert any(v.rule == "RPR013" for v in both.violations)
        only_caller = run_paths([str(tmp_path)],
                                restrict={str(caller.as_posix())})
        assert only_caller.violations == []


class TestMergedSourceContract:
    """The repo's own code must satisfy the numerics contract."""

    @pytest.fixture(scope="class")
    def src_result(self):
        return run_paths([str(REPO_ROOT / "src")])

    def test_src_has_zero_unwaived_numerics_findings(self, src_result):
        numerics = [v for v in src_result.violations
                    if v.rule in ("RPR013", "RPR014", "RPR015",
                                  "RPR016", "RPR017")]
        assert numerics == [], [(v.path, v.line, v.rule) for v in numerics]
        for rule, count in src_result.waivers_by_rule.items():
            assert not rule.startswith("RPR01") or count == 0

    def test_dtype_surface_classifies_every_public_function(self, src_result):
        surface = src_result.dtype_surface
        assert surface["counts"]["unproven"] == 0
        assert sum(surface["counts"].values()) == len(surface["functions"])
        assert len(surface["functions"]) > 50
        for qualname, info in surface["functions"].items():
            assert qualname.startswith(("repro.api", "repro.core"))
            assert info["status"] in ("proven-polymorphic",
                                      "pinned-annotated", "unproven")
            if info["status"] == "pinned-annotated":
                assert info["pinned"], qualname

    def test_dtype_surface_is_json_stable(self, src_result):
        payload = to_json_payload(src_result)
        assert payload["dtype_surface"] == src_result.dtype_surface
