"""Tests for the RSSI localization baselines."""

import numpy as np
import pytest

from repro.baselines import (
    FingerprintLocalizer,
    ModelBasedRssLocalizer,
    RssFingerprint,
    WeightedCentroidLocalizer,
)
from repro.channel import log_distance_path_loss_db
from repro.errors import EstimationError
from repro.geometry import Point2D

AP_POSITIONS = {
    "1": Point2D(0.0, 0.0),
    "2": Point2D(20.0, 0.0),
    "3": Point2D(10.0, 10.0),
    "4": Point2D(0.0, 10.0),
}
TX_POWER_DBM = 15.0
EXPONENT = 3.0


def _model_rssi(position, noise_sigma=0.0, rng=None):
    """Generate RSSI that exactly follows the log-distance model."""
    rng = rng or np.random.default_rng(0)
    observation = {}
    for ap_id, ap_position in AP_POSITIONS.items():
        loss = log_distance_path_loss_db(position.distance_to(ap_position),
                                         path_loss_exponent=EXPONENT)
        value = TX_POWER_DBM - loss
        if noise_sigma:
            value += float(rng.normal(scale=noise_sigma))
        observation[ap_id] = value
    return observation


class TestFingerprintLocalizer:
    def _radio_map(self, spacing=2.0):
        fingerprints = []
        # Exact-count survey axes (repro-lint RPR001): same points the old
        # float-step arange produced, without the rounding-driven count.
        xs = np.linspace(1.0, 19.0, int(round(18.0 / spacing)) + 1)
        ys = np.linspace(1.0, 9.0, int(round(8.0 / spacing)) + 1)
        for x in xs:
            for y in ys:
                point = Point2D(float(x), float(y))
                fingerprints.append(RssFingerprint(point, _model_rssi(point)))
        return fingerprints

    def test_requires_training(self):
        with pytest.raises(EstimationError):
            FingerprintLocalizer().locate({"1": -40.0})

    def test_locates_near_survey_point(self):
        localizer = FingerprintLocalizer(k=3)
        localizer.train(self._radio_map())
        target = Point2D(7.3, 4.2)
        estimate = localizer.locate(_model_rssi(target))
        assert estimate.distance_to(target) < 2.5

    def test_accuracy_degrades_with_noise(self):
        localizer = FingerprintLocalizer(k=3)
        localizer.train(self._radio_map())
        rng = np.random.default_rng(1)
        target = Point2D(7.3, 4.2)
        clean_error = localizer.locate(_model_rssi(target)).distance_to(target)
        noisy_errors = [localizer.locate(
            _model_rssi(target, noise_sigma=6.0, rng=rng)).distance_to(target)
            for _ in range(10)]
        assert np.mean(noisy_errors) >= clean_error

    def test_invalid_k(self):
        with pytest.raises(EstimationError):
            FingerprintLocalizer(k=0)


class TestModelBasedLocalizer:
    def test_distance_inversion_round_trip(self):
        localizer = ModelBasedRssLocalizer(AP_POSITIONS, TX_POWER_DBM,
                                           path_loss_exponent=EXPONENT)
        for distance in (2.0, 5.0, 15.0):
            rssi = TX_POWER_DBM - log_distance_path_loss_db(
                distance, path_loss_exponent=EXPONENT)
            assert localizer.estimate_distance_m(rssi) == pytest.approx(distance, rel=0.01)

    def test_locates_with_exact_model(self):
        localizer = ModelBasedRssLocalizer(AP_POSITIONS, TX_POWER_DBM,
                                           path_loss_exponent=EXPONENT,
                                           grid_resolution_m=0.25)
        target = Point2D(12.0, 4.0)
        estimate = localizer.locate(_model_rssi(target), (0, 0, 20, 10))
        assert estimate.distance_to(target) < 0.5

    def test_requires_three_aps(self):
        localizer = ModelBasedRssLocalizer(AP_POSITIONS)
        with pytest.raises(EstimationError):
            localizer.locate({"1": -50.0, "2": -60.0}, (0, 0, 20, 10))


class TestWeightedCentroid:
    def test_centroid_is_pulled_towards_strong_ap(self):
        localizer = WeightedCentroidLocalizer(AP_POSITIONS)
        observation = {"1": -40.0, "2": -80.0, "3": -80.0, "4": -80.0}
        estimate = localizer.locate(observation)
        distances = {ap: estimate.distance_to(p) for ap, p in AP_POSITIONS.items()}
        assert distances["1"] == min(distances.values())

    def test_equal_rssi_gives_geometric_centroid(self):
        localizer = WeightedCentroidLocalizer(AP_POSITIONS)
        estimate = localizer.locate({ap: -60.0 for ap in AP_POSITIONS})
        assert estimate.x == pytest.approx(np.mean([p.x for p in AP_POSITIONS.values()]))
        assert estimate.y == pytest.approx(np.mean([p.y for p in AP_POSITIONS.values()]))

    def test_no_usable_aps(self):
        localizer = WeightedCentroidLocalizer(AP_POSITIONS)
        with pytest.raises(EstimationError):
            localizer.locate({"unknown": -50.0})
