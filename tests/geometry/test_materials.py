"""Tests for the building-material registry."""

import pytest

from repro.geometry import MATERIALS, Material, get_material


class TestMaterials:
    def test_registry_contains_expected_materials(self):
        for name in ("drywall", "concrete", "glass", "metal", "wood"):
            assert name in MATERIALS

    def test_get_material_unknown_name(self):
        with pytest.raises(KeyError):
            get_material("unobtanium")

    def test_metal_reflects_more_than_glass(self):
        assert (get_material("metal").reflection_coefficient
                > get_material("glass").reflection_coefficient)

    def test_concrete_attenuates_more_than_drywall(self):
        assert (get_material("concrete").transmission_loss_db
                > get_material("drywall").transmission_loss_db)

    def test_transmission_amplitude_matches_db(self):
        material = get_material("drywall")
        expected = 10.0 ** (-material.transmission_loss_db / 20.0)
        assert material.transmission_amplitude == pytest.approx(expected)

    def test_invalid_reflection_coefficient_rejected(self):
        with pytest.raises(ValueError):
            Material("bad", reflection_coefficient=1.5, transmission_loss_db=1.0)

    def test_negative_transmission_loss_rejected(self):
        with pytest.raises(ValueError):
            Material("bad", reflection_coefficient=0.5, transmission_loss_db=-1.0)
