"""Tests for walls, pillars and the geometric predicates the ray tracer uses."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import GeometryError
from repro.geometry import Point2D, Wall, Pillar, get_material, reflection_point
from repro.geometry.walls import point_segment_distance, segment_circle_intersects

coords = st.floats(min_value=-50, max_value=50, allow_nan=False, allow_infinity=False)


class TestWall:
    def test_degenerate_wall_rejected(self):
        with pytest.raises(GeometryError):
            Wall(Point2D(1.0, 1.0), Point2D(1.0, 1.0))

    def test_material_accepts_name(self):
        wall = Wall(Point2D(0, 0), Point2D(1, 0), "glass")
        assert wall.material is get_material("glass")

    def test_length_direction_normal(self):
        wall = Wall(Point2D(0, 0), Point2D(4, 0))
        assert wall.length == pytest.approx(4.0)
        assert wall.direction == Point2D(1.0, 0.0)
        assert wall.normal == Point2D(0.0, 1.0)
        assert wall.midpoint == Point2D(2.0, 0.0)

    def test_mirror_point_across_horizontal_wall(self):
        wall = Wall(Point2D(0, 0), Point2D(10, 0))
        assert wall.mirror_point(Point2D(3.0, 2.0)) == Point2D(3.0, -2.0)

    def test_mirror_point_is_involution(self):
        wall = Wall(Point2D(0, 0), Point2D(3, 4))
        point = Point2D(1.0, 5.0)
        double_mirror = wall.mirror_point(wall.mirror_point(point))
        assert double_mirror.distance_to(point) < 1e-9

    def test_intersection_with_crossing_segment(self):
        wall = Wall(Point2D(0, 0), Point2D(10, 0))
        hit = wall.intersection_with_segment(Point2D(5, -1), Point2D(5, 1))
        assert hit is not None
        assert hit.distance_to(Point2D(5, 0)) < 1e-9

    def test_no_intersection_for_parallel_segment(self):
        wall = Wall(Point2D(0, 0), Point2D(10, 0))
        assert wall.intersection_with_segment(Point2D(0, 1), Point2D(10, 1)) is None

    def test_blocks_ignores_grazing_endpoints(self):
        wall = Wall(Point2D(0, 0), Point2D(10, 0))
        # A path that terminates exactly on the wall does not count as blocked.
        assert not wall.blocks(Point2D(5, 0), Point2D(5, 5))
        assert wall.blocks(Point2D(5, -2), Point2D(5, 2))


class TestPillar:
    def test_invalid_radius_rejected(self):
        with pytest.raises(GeometryError):
            Pillar(Point2D(0, 0), radius=0.0)

    def test_blocks_segment_through_center(self):
        pillar = Pillar(Point2D(5, 5), radius=0.5)
        assert pillar.blocks(Point2D(0, 5), Point2D(10, 5))
        assert not pillar.blocks(Point2D(0, 0), Point2D(10, 0))

    def test_blocks_endpoint_inside_pillar(self):
        pillar = Pillar(Point2D(5, 5), radius=0.5)
        assert pillar.blocks(Point2D(5.2, 5.0), Point2D(10, 5))


class TestReflectionPoint:
    def test_specular_point_for_symmetric_geometry(self):
        wall = Wall(Point2D(0, 0), Point2D(10, 0))
        point = reflection_point(wall, Point2D(2, 2), Point2D(8, 2))
        assert point is not None
        assert point.distance_to(Point2D(5.0, 0.0)) < 1e-9

    def test_no_specular_point_outside_segment(self):
        wall = Wall(Point2D(0, 0), Point2D(1, 0))
        # Both endpoints far to the right: the specular point would lie
        # beyond the end of the finite wall segment.
        assert reflection_point(wall, Point2D(20, 2), Point2D(25, 2)) is None

    def test_reflection_path_lengths_match_image_distance(self):
        wall = Wall(Point2D(0, 0), Point2D(10, 0))
        source, destination = Point2D(2, 3), Point2D(7, 1)
        point = reflection_point(wall, source, destination)
        assert point is not None
        via_wall = source.distance_to(point) + point.distance_to(destination)
        image = wall.mirror_point(source)
        assert via_wall == pytest.approx(image.distance_to(destination))


class TestSegmentCircle:
    @given(coords, coords, coords, coords)
    def test_endpoint_inside_circle_always_intersects(self, x1, y1, x2, y2):
        center = Point2D(x1, y1)
        inside = Point2D(x1 + 0.1, y1)
        other = Point2D(x2, y2)
        assert segment_circle_intersects(inside, other, center, 0.5)

    def test_distant_segment_does_not_intersect(self):
        assert not segment_circle_intersects(
            Point2D(0, 10), Point2D(10, 10), Point2D(5, 0), 1.0)

    def test_point_segment_distance(self):
        assert point_segment_distance(Point2D(5, 3), Point2D(0, 0),
                                      Point2D(10, 0)) == pytest.approx(3.0)
        assert point_segment_distance(Point2D(-2, 0), Point2D(0, 0),
                                      Point2D(10, 0)) == pytest.approx(2.0)
