"""Tests for floorplans and the image-source ray tracer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import GeometryError
from repro.geometry import (
    Floorplan,
    Pillar,
    Point2D,
    RayTracer,
    Wall,
    bearing_deg,
    rectangular_room,
    trace_paths,
)

inner_coords = st.floats(min_value=1.0, max_value=19.0,
                         allow_nan=False, allow_infinity=False)
inner_y = st.floats(min_value=1.0, max_value=9.0,
                    allow_nan=False, allow_infinity=False)


class TestFloorplan:
    def test_rectangular_room_has_four_walls(self):
        room = rectangular_room(20.0, 10.0)
        assert len(room.walls) == 4
        assert room.bounding_box() == (0.0, 0.0, 20.0, 10.0)

    def test_rectangular_room_rejects_bad_dimensions(self):
        with pytest.raises(GeometryError):
            rectangular_room(-1.0, 5.0)

    def test_empty_floorplan_bounding_box_raises(self):
        with pytest.raises(GeometryError):
            Floorplan().bounding_box()

    def test_line_of_sight_inside_empty_room(self):
        room = rectangular_room(20.0, 10.0)
        assert room.line_of_sight(Point2D(1, 1), Point2D(19, 9))

    def test_interior_wall_blocks_line_of_sight(self):
        room = rectangular_room(20.0, 10.0)
        room.add_wall(Wall(Point2D(10, 0), Point2D(10, 10), "concrete", name="divider"))
        assert not room.line_of_sight(Point2D(5, 5), Point2D(15, 5))
        assert room.penetration_loss_db(Point2D(5, 5), Point2D(15, 5)) == pytest.approx(18.0)

    def test_pillar_blocks_line_of_sight(self):
        room = rectangular_room(20.0, 10.0)
        room.add_pillar(Pillar(Point2D(10, 5), 0.5))
        assert not room.line_of_sight(Point2D(5, 5), Point2D(15, 5))
        assert room.line_of_sight(Point2D(5, 2), Point2D(15, 2))

    def test_contains_uses_bounding_box(self):
        room = rectangular_room(20.0, 10.0)
        assert room.contains(Point2D(10, 5))
        assert not room.contains(Point2D(25, 5))

    def test_summary_mentions_counts(self):
        room = rectangular_room(20.0, 10.0, name="lab")
        assert "4 walls" in room.summary()


class TestRayTracer:
    def test_direct_path_is_first_and_unblocked(self, simple_room):
        paths = trace_paths(simple_room, Point2D(5, 5), Point2D(15, 5))
        assert paths[0].is_direct
        assert not paths[0].blocked
        assert paths[0].length == pytest.approx(10.0)
        assert paths[0].num_reflections == 0

    def test_direct_path_bearing_points_from_receiver_to_source(self, simple_room):
        source, destination = Point2D(5, 5), Point2D(15, 5)
        paths = trace_paths(simple_room, source, destination)
        assert paths[0].arrival_bearing_deg == pytest.approx(
            bearing_deg(destination, source))

    def test_first_order_reflections_present(self, simple_room):
        paths = trace_paths(simple_room, Point2D(5, 5), Point2D(15, 5),
                            max_reflections=1)
        reflections = [p for p in paths if p.num_reflections == 1]
        # Floor and ceiling walls both give a specular reflection; the side
        # walls may or may not depending on the geometry.
        assert len(reflections) >= 2
        for path in reflections:
            assert path.length > 10.0
            assert path.attenuation_db > 0.0

    def test_second_order_reflections_are_longer(self, simple_room):
        paths = trace_paths(simple_room, Point2D(5, 5), Point2D(15, 5),
                            max_reflections=2)
        second = [p for p in paths if p.num_reflections == 2]
        first = [p for p in paths if p.num_reflections == 1]
        assert second, "expected at least one second-order path"
        assert min(p.length for p in second) >= min(p.length for p in first)

    def test_blocked_direct_path_is_attenuated_not_dropped(self, simple_room):
        simple_room.add_wall(Wall(Point2D(10, 0), Point2D(10, 10), "drywall",
                                  name="divider"))
        paths = trace_paths(simple_room, Point2D(5, 5), Point2D(15, 5))
        direct = paths[0]
        assert direct.is_direct and direct.blocked
        assert direct.attenuation_db == pytest.approx(3.0)

    def test_heavily_obstructed_direct_path_is_dropped(self, simple_room):
        for offset in (8.0, 9.0, 10.0, 11.0, 12.0):
            simple_room.add_wall(Wall(Point2D(offset, 0), Point2D(offset, 10),
                                      "concrete", name=f"c{offset}"))
        tracer = RayTracer(simple_room, max_reflections=0, max_penetration_db=40.0)
        paths = tracer.trace(Point2D(5, 5), Point2D(15, 5))
        assert all(not p.is_direct for p in paths)

    def test_coincident_endpoints_rejected(self, simple_room):
        with pytest.raises(GeometryError):
            trace_paths(simple_room, Point2D(5, 5), Point2D(5, 5))

    def test_invalid_reflection_order_rejected(self, simple_room):
        with pytest.raises(GeometryError):
            RayTracer(simple_room, max_reflections=3)

    @settings(max_examples=25, deadline=None)
    @given(inner_coords, inner_y, inner_coords, inner_y)
    def test_reflected_paths_always_longer_than_direct(self, x1, y1, x2, y2):
        room = rectangular_room(20.0, 10.0)
        source, destination = Point2D(x1, y1), Point2D(x2, y2)
        if source.distance_to(destination) < 0.1:
            return
        paths = trace_paths(room, source, destination, max_reflections=1)
        direct_length = paths[0].length
        for path in paths[1:]:
            assert path.length >= direct_length - 1e-9

    @settings(max_examples=25, deadline=None)
    @given(inner_coords, inner_y, inner_coords, inner_y)
    def test_path_lengths_match_vertex_polyline(self, x1, y1, x2, y2):
        room = rectangular_room(20.0, 10.0)
        source, destination = Point2D(x1, y1), Point2D(x2, y2)
        if source.distance_to(destination) < 0.1:
            return
        for path in trace_paths(room, source, destination, max_reflections=2):
            polyline = sum(a.distance_to(b)
                           for a, b in zip(path.vertices, path.vertices[1:], strict=False))
            assert polyline == pytest.approx(path.length, rel=1e-9)
