"""Unit and property tests for 2-D vector/angle utilities."""


import pytest
from hypothesis import given, strategies as st

from repro.errors import GeometryError
from repro.geometry import (
    Point2D,
    angle_difference_deg,
    bearing_deg,
    distance,
    normalize_angle_deg,
)

finite_coords = st.floats(min_value=-1e4, max_value=1e4,
                          allow_nan=False, allow_infinity=False)
angles = st.floats(min_value=-720.0, max_value=720.0,
                   allow_nan=False, allow_infinity=False)


class TestPoint2D:
    def test_addition_and_subtraction(self):
        a = Point2D(1.0, 2.0)
        b = Point2D(3.0, -1.0)
        assert (a + b) == Point2D(4.0, 1.0)
        assert (b - a) == Point2D(2.0, -3.0)

    def test_scalar_multiplication_is_commutative(self):
        p = Point2D(1.5, -2.0)
        assert 2.0 * p == p * 2.0 == Point2D(3.0, -4.0)

    def test_division_by_zero_raises(self):
        with pytest.raises(GeometryError):
            Point2D(1.0, 1.0) / 0.0

    def test_norm_and_normalized(self):
        p = Point2D(3.0, 4.0)
        assert p.norm() == pytest.approx(5.0)
        unit = p.normalized()
        assert unit.norm() == pytest.approx(1.0)
        assert unit.x == pytest.approx(0.6)

    def test_normalize_zero_vector_raises(self):
        with pytest.raises(GeometryError):
            Point2D(0.0, 0.0).normalized()

    def test_dot_and_cross(self):
        a = Point2D(1.0, 0.0)
        b = Point2D(0.0, 2.0)
        assert a.dot(b) == pytest.approx(0.0)
        assert a.cross(b) == pytest.approx(2.0)

    def test_perpendicular_is_rotation_by_90(self):
        p = Point2D(1.0, 0.0)
        assert p.perpendicular() == Point2D(0.0, 1.0)
        assert p.rotated(90.0).y == pytest.approx(1.0)

    def test_rotation_preserves_length(self):
        p = Point2D(2.0, 3.0)
        rotated = p.rotated(37.0)
        assert rotated.norm() == pytest.approx(p.norm())

    def test_distance_to(self):
        assert Point2D(0.0, 0.0).distance_to(Point2D(3.0, 4.0)) == pytest.approx(5.0)

    def test_iteration_and_tuple(self):
        p = Point2D(1.0, 2.0)
        assert tuple(p) == (1.0, 2.0)
        assert p.as_tuple() == (1.0, 2.0)

    def test_from_iterable_requires_two_values(self):
        assert Point2D.from_iterable([1, 2]) == Point2D(1.0, 2.0)
        with pytest.raises(GeometryError):
            Point2D.from_iterable([1, 2, 3])


class TestBearings:
    def test_bearing_cardinal_directions(self):
        origin = Point2D(0.0, 0.0)
        assert bearing_deg(origin, Point2D(1.0, 0.0)) == pytest.approx(0.0)
        assert bearing_deg(origin, Point2D(0.0, 1.0)) == pytest.approx(90.0)
        assert bearing_deg(origin, Point2D(-1.0, 0.0)) == pytest.approx(180.0)
        assert bearing_deg(origin, Point2D(0.0, -1.0)) == pytest.approx(270.0)

    def test_bearing_of_coincident_points_raises(self):
        with pytest.raises(GeometryError):
            bearing_deg(Point2D(1.0, 1.0), Point2D(1.0, 1.0))

    def test_distance_helper_matches_method(self):
        a, b = Point2D(1.0, 2.0), Point2D(4.0, 6.0)
        assert distance(a, b) == pytest.approx(a.distance_to(b)) == pytest.approx(5.0)

    @given(finite_coords, finite_coords, finite_coords, finite_coords)
    def test_bearing_is_always_in_range(self, x1, y1, x2, y2):
        a, b = Point2D(x1, y1), Point2D(x2, y2)
        if a.distance_to(b) < 1e-9:
            return
        bearing = bearing_deg(a, b)
        assert 0.0 <= bearing < 360.0

    @given(finite_coords, finite_coords, finite_coords, finite_coords)
    def test_reverse_bearing_differs_by_180(self, x1, y1, x2, y2):
        a, b = Point2D(x1, y1), Point2D(x2, y2)
        if a.distance_to(b) < 1e-6:
            return
        forward = bearing_deg(a, b)
        backward = bearing_deg(b, a)
        assert angle_difference_deg(forward, backward) == pytest.approx(180.0, abs=1e-6)


class TestAngles:
    @given(angles)
    def test_normalize_angle_range(self, angle):
        normalized = normalize_angle_deg(angle)
        assert 0.0 <= normalized < 360.0

    @given(angles, angles)
    def test_angle_difference_is_symmetric_and_bounded(self, a, b):
        diff = angle_difference_deg(a, b)
        assert 0.0 <= diff <= 180.0
        assert diff == pytest.approx(angle_difference_deg(b, a))

    def test_angle_difference_wraps(self):
        assert angle_difference_deg(359.0, 1.0) == pytest.approx(2.0)
        assert angle_difference_deg(0.0, 180.0) == pytest.approx(180.0)

    @given(angles)
    def test_angle_difference_to_self_is_zero(self, a):
        assert angle_difference_deg(a, a) == pytest.approx(0.0, abs=1e-9)
