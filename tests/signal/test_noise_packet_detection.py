"""Tests for SNR utilities, the frame model and packet detection."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DetectionError, SignalError
from repro.signal import (
    Frame,
    MatchedFilterDetector,
    SchmidlCoxDetector,
    Waveform,
    add_awgn,
    air_time_s,
    db_to_linear,
    generate_preamble,
    linear_to_db,
    measure_snr_db,
    noise_power_for_snr,
)


class TestNoise:
    def test_db_round_trip(self):
        for value in (0.1, 1.0, 3.0, 100.0):
            assert db_to_linear(linear_to_db(value)) == pytest.approx(value)

    def test_linear_to_db_rejects_non_positive(self):
        with pytest.raises(SignalError):
            linear_to_db(0.0)

    def test_noise_power_for_snr(self):
        assert noise_power_for_snr(1.0, 10.0) == pytest.approx(0.1)
        assert noise_power_for_snr(2.0, 0.0) == pytest.approx(2.0)

    @settings(max_examples=10, deadline=None)
    @given(st.floats(min_value=-5.0, max_value=30.0))
    def test_add_awgn_achieves_requested_snr(self, snr_db):
        rng = np.random.default_rng(3)
        clean = Waveform(np.exp(1j * rng.uniform(0, 2 * np.pi, size=20000)))
        noisy = add_awgn(clean, snr_db, rng=rng)
        measured = measure_snr_db(noisy.samples, clean.samples)
        assert measured == pytest.approx(snr_db, abs=0.5)

    def test_measure_snr_requires_matching_shapes(self):
        with pytest.raises(SignalError):
            measure_snr_db(np.zeros(4), np.zeros(5))


class TestFrame:
    def test_air_time_matches_paper_examples(self):
        # Section 4.4: ~222 us at 54 Mbit/s, ~12 ms at 1 Mbit/s for 1500 bytes.
        assert air_time_s(1500, 54.0) == pytest.approx(238e-6, rel=0.1)
        assert air_time_s(1500, 1.0) == pytest.approx(12e-3, rel=0.05)

    def test_invalid_frame_parameters_rejected(self):
        with pytest.raises(SignalError):
            Frame("c", payload_bytes=0)
        with pytest.raises(SignalError):
            Frame("c", bitrate_mbps=-1)

    def test_baseband_waveform_starts_with_preamble(self):
        frame = Frame("client-1")
        waveform = frame.baseband_waveform(include_payload=True, payload_samples=64)
        preamble = generate_preamble()
        assert len(waveform) == len(preamble) + 64
        assert np.allclose(waveform.samples[:len(preamble)], preamble.samples)


class TestDetectors:
    def test_schmidl_cox_detects_clean_preamble(self):
        preamble = generate_preamble().delayed(500)
        result = SchmidlCoxDetector().detect(preamble)
        assert result.detected
        assert result.metric_peak > 0.9

    def test_schmidl_cox_ignores_noise_only_input(self):
        rng = np.random.default_rng(0)
        noise = Waveform(rng.normal(size=4000) + 1j * rng.normal(size=4000))
        assert not SchmidlCoxDetector().detect(noise).detected

    def test_matched_filter_detects_at_low_snr(self):
        rng = np.random.default_rng(1)
        preamble = generate_preamble()
        noisy = add_awgn(preamble.delayed(2000), -10.0, rng=rng,
                         reference_power=preamble.power())
        assert MatchedFilterDetector().detect(noisy).detected

    def test_matched_filter_rejects_pure_noise(self):
        rng = np.random.default_rng(2)
        noise = Waveform(0.5 * (rng.normal(size=6000) + 1j * rng.normal(size=6000)))
        result = MatchedFilterDetector(threshold=8.0).detect(noise)
        assert not result.detected

    def test_matched_filter_finds_two_separated_preambles(self):
        preamble = generate_preamble()
        gap = Waveform.zeros(4000)
        stream = preamble.concatenate(gap).concatenate(preamble)
        rng = np.random.default_rng(3)
        noisy = add_awgn(stream, 10.0, rng=rng, reference_power=preamble.power())
        result = MatchedFilterDetector().detect(noisy)
        assert result.detected
        assert len(result.all_starts) >= 2

    def test_detector_threshold_validation(self):
        with pytest.raises(DetectionError):
            SchmidlCoxDetector(threshold=0.0)
        with pytest.raises(DetectionError):
            MatchedFilterDetector(threshold=-1.0)

    def test_detection_result_is_truthy_when_detected(self):
        preamble = generate_preamble().delayed(100)
        assert bool(MatchedFilterDetector().detect(preamble))
