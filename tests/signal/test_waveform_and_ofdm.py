"""Tests for the waveform container and 802.11 OFDM preamble generation."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.constants import PREAMBLE_DURATION_S, SAMPLE_RATE_HZ
from repro.errors import SignalError
from repro.signal import (
    PreambleLayout,
    Waveform,
    generate_long_training_field,
    generate_preamble,
    generate_short_training_field,
    long_training_symbol,
    short_training_symbol,
)


class TestWaveform:
    def test_requires_one_dimensional_samples(self):
        with pytest.raises(SignalError):
            Waveform(np.zeros((2, 2)))

    def test_power_and_energy(self):
        w = Waveform(np.array([1.0, 1j, -1.0, -1j]))
        assert w.power() == pytest.approx(1.0)
        assert w.energy() == pytest.approx(4.0)
        assert w.rms() == pytest.approx(1.0)

    def test_empty_waveform_power_is_zero(self):
        assert Waveform.zeros(0).power() == 0.0

    def test_duration(self):
        w = Waveform.zeros(400, sample_rate_hz=40e6)
        assert w.duration_s == pytest.approx(1e-5)

    def test_delay_pads_front_with_zeros(self):
        w = Waveform(np.ones(4))
        delayed = w.delayed(3)
        assert len(delayed) == 7
        assert np.all(delayed.samples[:3] == 0)

    def test_concatenate_requires_matching_rates(self):
        a = Waveform.zeros(4, 20e6)
        b = Waveform.zeros(4, 40e6)
        with pytest.raises(SignalError):
            a.concatenate(b)

    def test_repeated_tiles_samples(self):
        w = Waveform(np.array([1.0, 2.0]))
        assert np.allclose(w.repeated(3).samples, [1, 2, 1, 2, 1, 2])

    def test_upsampled_holds_samples_and_scales_rate(self):
        w = Waveform(np.array([1.0, 2.0]), 20e6)
        up = w.upsampled(2)
        assert np.allclose(up.samples, [1, 1, 2, 2])
        assert up.sample_rate_hz == pytest.approx(40e6)

    def test_slice_time(self):
        w = Waveform(np.arange(10, dtype=complex), sample_rate_hz=10.0)
        sliced = w.slice_time(0.2, 0.5)
        assert np.allclose(sliced.samples, [2, 3, 4])

    def test_continuous_wave_has_unit_amplitude(self):
        tone = Waveform.continuous_wave(1e6, duration_s=1e-5)
        assert np.allclose(np.abs(tone.samples), 1.0)

    @given(st.integers(min_value=1, max_value=64))
    def test_zeros_length(self, n):
        assert len(Waveform.zeros(n)) == n


class TestPreamble:
    def test_short_symbol_duration(self):
        sts = short_training_symbol(SAMPLE_RATE_HZ)
        assert sts.duration_s == pytest.approx(0.8e-6)

    def test_long_symbol_duration(self):
        lts = long_training_symbol(SAMPLE_RATE_HZ)
        assert lts.duration_s == pytest.approx(3.2e-6)

    def test_short_training_field_is_periodic(self):
        field = generate_short_training_field(SAMPLE_RATE_HZ)
        symbol_len = len(short_training_symbol(SAMPLE_RATE_HZ))
        first = field.samples[:symbol_len]
        for repetition in range(1, 10):
            segment = field.samples[repetition * symbol_len:(repetition + 1) * symbol_len]
            assert np.allclose(segment, first)

    def test_long_training_field_guard_is_cyclic_prefix(self):
        field = generate_long_training_field(SAMPLE_RATE_HZ, include_guard=True)
        lts = long_training_symbol(SAMPLE_RATE_HZ)
        guard_len = len(lts) // 2
        assert np.allclose(field.samples[:guard_len], lts.samples[-guard_len:])

    def test_preamble_duration_is_16_microseconds(self):
        preamble = generate_preamble(SAMPLE_RATE_HZ)
        assert preamble.duration_s == pytest.approx(PREAMBLE_DURATION_S)

    def test_preamble_layout_landmarks(self):
        layout = PreambleLayout(SAMPLE_RATE_HZ)
        preamble = generate_preamble(SAMPLE_RATE_HZ)
        assert layout.preamble_length == len(preamble)
        # The two long training symbols are identical copies.
        lts_len = layout.lts_length
        first = preamble.samples[layout.first_lts_start:layout.first_lts_start + lts_len]
        second = preamble.samples[layout.second_lts_start:layout.second_lts_start + lts_len]
        assert np.allclose(first, second)

    def test_non_integer_oversampling_rejected(self):
        with pytest.raises(SignalError):
            generate_preamble(30e6)

    def test_preamble_has_nonzero_power(self):
        assert generate_preamble().power() > 0.0
