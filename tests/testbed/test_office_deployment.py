"""Tests for the office testbed description and the simulated deployment."""

import pytest

from repro.errors import ConfigurationError
from repro.testbed import (
    NUM_CLIENTS,
    OFFICE_DEPTH_M,
    OFFICE_WIDTH_M,
    ScenarioConfig,
    SimulatedDeployment,
    build_office_floorplan,
    build_office_testbed,
    default_ap_sites,
    default_client_positions,
)


class TestOfficeTestbed:
    def test_floorplan_dimensions_and_contents(self):
        plan = build_office_floorplan()
        xmin, ymin, xmax, ymax = plan.bounding_box()
        assert (xmax - xmin) == pytest.approx(OFFICE_WIDTH_M)
        assert (ymax - ymin) == pytest.approx(OFFICE_DEPTH_M)
        assert len(plan.pillars) == 4
        assert len(plan.walls) > 15

    def test_six_ap_sites_like_figure_12(self, office_testbed):
        sites = default_ap_sites()
        assert [s.ap_id for s in sites] == ["1", "2", "3", "4", "5", "6"]
        for site in sites:
            assert office_testbed.floorplan.contains(site.position, margin=0.1)

    def test_41_clients_inside_the_floor(self, office_testbed):
        assert len(office_testbed.clients) == NUM_CLIENTS
        for position in office_testbed.clients.values():
            assert 0.0 < position.x < OFFICE_WIDTH_M
            assert 0.0 < position.y < OFFICE_DEPTH_M

    def test_client_layout_is_deterministic(self):
        assert default_client_positions() == default_client_positions()

    def test_some_clients_are_behind_pillars(self, office_testbed):
        """At least one client has its direct path to some AP blocked by a pillar."""
        plan = office_testbed.floorplan
        blocked_pairs = 0
        for client in office_testbed.clients.values():
            for site in office_testbed.ap_sites:
                if plan.pillars_crossed(client, site.position):
                    blocked_pairs += 1
        assert blocked_pairs >= 1

    def test_lookup_helpers(self, office_testbed):
        assert office_testbed.ap_site("3").ap_id == "3"
        with pytest.raises(ConfigurationError):
            office_testbed.ap_site("9")
        with pytest.raises(ConfigurationError):
            office_testbed.client_position("client-99")

    def test_truncated_testbed(self):
        small = build_office_testbed(num_clients=5)
        assert len(small.clients) == 5


class TestSimulatedDeployment:
    @pytest.fixture
    def small_deployment(self, office_testbed):
        return SimulatedDeployment(office_testbed,
                                   ScenarioConfig(frames_per_client=2, seed=1))

    def test_aps_are_instantiated_per_site(self, small_deployment):
        assert sorted(small_deployment.aps) == ["1", "2", "3", "4", "5", "6"]

    def test_client_track_starts_at_ground_truth_and_moves_little(
            self, small_deployment, office_testbed):
        track = small_deployment.client_track("client-03", num_frames=3)
        assert track[0] == office_testbed.client_position("client-03")
        for a, b in zip(track, track[1:], strict=False):
            assert a.distance_to(b) <= 0.05 + 1e-9

    def test_capture_and_collect_spectra(self, small_deployment):
        spectra = small_deployment.collect_client_spectra("client-01",
                                                          ap_ids=["1", "2"])
        assert set(spectra) == {"1", "2"}
        assert all(len(s) == 2 for s in spectra.values())
        for ap_spectra in spectra.values():
            for spectrum in ap_spectra:
                assert spectrum.client_id == "client-01"
                assert spectrum.max_power > 0
        small_deployment.clear()
        assert small_deployment.spectra_for_client("client-01") == {}

    def test_scenario_validation(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(frames_per_client=0)
        with pytest.raises(ConfigurationError):
            ScenarioConfig(frame_spacing_s=-1.0)

    def test_scenario_channel_config_propagates_height_and_polarization(self):
        scenario = ScenarioConfig(height_offset_m=1.5, polarization_mismatch_deg=90.0)
        channel_config = scenario.channel_config()
        assert channel_config.height_offset_m == pytest.approx(1.5)
        assert channel_config.polarization_mismatch_deg == pytest.approx(90.0)
