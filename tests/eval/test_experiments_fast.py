"""Fast (down-scaled) runs of every experiment to verify they work end to end.

The benchmark harness runs the paper-sized versions; these tests exercise the
same code paths with small parameters so the full suite stays quick.
"""


import pytest

from repro.errors import EstimationError
from repro.eval import (
    appendix_a_height_error,
    baseline_comparison,
    fig3_example_spectrum,
    fig7_spatial_smoothing,
    fig9_multipath_suppression,
    fig14_heatmaps,
    fig17_pillar_blocking,
    fig19_sample_count,
    fig20_snr_sweep,
    fig21_latency,
    roaming_tracking,
    roaming_tracking_comparison,
    run_localization_sweep,
    sec434_detection_snr,
    sec435_collisions,
    table1_peak_stability,
)


class TestSpectrumExperiments:
    def test_fig3_example_spectrum_has_peaks_near_truth(self):
        result = fig3_example_spectrum()
        assert result.summary["num_peaks"] >= 1
        assert result.summary["closest_peak_offset_deg"] < 10.0

    def test_fig7_smoothing_reduces_or_keeps_peak_count(self):
        result = fig7_spatial_smoothing(group_counts=(1, 2, 3))
        assert set(result.spectra) == {"NG=1", "NG=2", "NG=3"}
        assert result.summary["num_peaks_NG3"] <= result.summary["num_peaks_NG1"] + 1

    def test_table1_direct_path_more_stable_than_reflections(self):
        result = table1_peak_stability(num_positions=20, seed=5)
        assert result.total_positions == 20
        fractions = result.as_dict()
        assert abs(sum(fractions.values()) - 1.0) < 1e-9
        # The headline qualitative claim of Table 1: the direct-path peak is
        # usually stable under small movements.
        assert result.fraction_direct_same > 0.5

    def test_fig9_suppression_does_not_add_peaks(self):
        result = fig9_multipath_suppression()
        assert result.summary["peaks_after"] <= result.summary["peaks_before"]

    def test_fig17_direct_peak_survives_pillar_blocking(self):
        result = fig17_pillar_blocking()
        assert result.summary["pillars_crossed [no blocking]"] == 0
        assert result.summary["pillars_crossed [blocked by 1 pillar]"] >= 1
        # Even when blocked, the direct path produces an identifiable peak
        # among the strongest few.  (The paper finds it within the top three;
        # our synthetic clutter is somewhat harsher, see EXPERIMENTS.md.)
        assert result.summary["direct_peak_rank [no blocking]"] == 1
        for label in ("blocked by 1 pillar", "blocked by 2 pillars"):
            assert 1 <= result.summary[f"direct_peak_rank [{label}]"] <= 8


class TestLocalizationExperiments:
    def test_sweep_errors_shrink_with_more_aps(self):
        sweep = run_localization_sweep(num_clients=8, ap_counts=(3, 6),
                                       max_subsets_per_count=2,
                                       grid_resolution_m=0.4)
        assert set(sweep.statistics) == {3, 6}
        assert sweep.statistics[6].median_cm <= sweep.statistics[3].median_cm * 1.5
        for count, (grid, fractions) in sweep.cdfs.items():
            assert fractions[-1] == pytest.approx(1.0)

    def test_fig14_error_improves_from_one_to_six_aps(self):
        errors = fig14_heatmaps(grid_resolution_m=0.4)
        assert set(errors) == {1, 2, 3, 4, 5, 6}
        assert errors[6] <= errors[1]


class TestRobustnessExperiments:
    def test_fig19_more_samples_do_not_hurt_stability(self):
        result = fig19_sample_count(sample_counts=(1, 10), num_packets=8)
        assert result[10]["bearing_std_deg"] <= result[1]["bearing_std_deg"] + 2.0

    def test_fig20_low_snr_blurs_the_spectrum(self):
        result = fig20_snr_sweep(snrs_db=(15.0, -5.0))
        assert (result[15.0]["power_near_true_bearing"]
                > result[-5.0]["power_near_true_bearing"])
        assert (result[15.0]["strongest_peak_error_deg"]
                < result[-5.0]["strongest_peak_error_deg"])

    def test_sec434_matched_filter_detects_below_0db(self):
        result = sec434_detection_snr(snrs_db=(10.0, -10.0), num_trials=6)
        assert result[10.0]["matched_filter_rate"] == 1.0
        assert result[-10.0]["matched_filter_rate"] >= 0.5

    def test_sec435_collision_recovery(self):
        result = sec435_collisions(num_trials=10)
        assert 0.0 <= result["success_rate"] <= 1.0
        # The second transmitter's bearing is recovered in a substantial
        # fraction of collisions (the paper's claim is qualitative; our
        # synthetic clutter is harsher, see EXPERIMENTS.md).
        assert result["success_rate"] >= 0.3

    def test_appendix_a_matches_paper_numbers(self):
        errors = appendix_a_height_error()
        assert errors[5.0] == pytest.approx(0.04, abs=0.01)
        assert errors[10.0] == pytest.approx(0.01, abs=0.005)


class TestSystemExperiments:
    def test_fig21_latency_breakdown(self):
        result = fig21_latency(grid_resolution_m=0.5)
        paper = result["paper model"]
        assert paper["added_after_frame_end_s"] == pytest.approx(0.1, abs=0.02)
        fast_frame = result["54 Mbit/s"]
        assert fast_frame["transfer_s"] == pytest.approx(2.56e-3)
        assert fast_frame["processing_s"] > 0.0

    def test_baselines_are_coarser_than_arraytrack(self):
        result = baseline_comparison(num_clients=6, survey_grid_m=3.0,
                                     grid_resolution_m=0.4)
        assert result["arraytrack"].median_cm < result["rss fingerprinting"].median_cm
        assert result["arraytrack"].median_cm < result["rss model"].median_cm
        assert result["arraytrack"].median_cm < result["weighted centroid"].median_cm


class TestRoamingTracking:
    def test_roaming_tracking_emits_one_fix_per_step(self):
        result = roaming_tracking(num_clients=2, num_steps=3,
                                  grid_resolution_m=0.4)
        assert result.num_clients == 2
        assert result.num_fixes == 6
        assert len(result.errors_cm) == 6
        assert result.fixes_per_s > 0
        assert set(result.path_length_m) == {"roamer-0", "roamer-1"}
        # Two fixes per client and walking clients: the tracker accumulated
        # a non-trivial smoothed trajectory.
        assert all(length > 0.0 for length in result.path_length_m.values())

    def test_roaming_comparison_runs_identical_captures(self):
        results = roaming_tracking_comparison(num_clients=1, num_steps=2,
                                              grid_resolution_m=0.4)
        suppressed = results["suppressed"]
        unsuppressed = results["unsuppressed"]
        assert suppressed.num_fixes == unsuppressed.num_fixes == 2
        # Same seed, same walks: the error samples are paired, not merely
        # the same length.
        assert suppressed.errors_cm != []
        assert len(suppressed.errors_cm) == len(unsuppressed.errors_cm)

    def test_roaming_tracking_rejects_degenerate_sizes(self):
        with pytest.raises(EstimationError):
            roaming_tracking(num_steps=1)
        with pytest.raises(EstimationError):
            roaming_tracking(num_clients=0)
