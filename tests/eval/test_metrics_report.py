"""Tests for the evaluation metrics and the text report renderer."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import EstimationError
from repro.eval import (
    empirical_cdf,
    format_cdf_series,
    format_error_statistics,
    format_key_values,
    format_table,
    summarize_errors,
)

error_samples = st.lists(st.floats(min_value=0.0, max_value=5000.0,
                                   allow_nan=False, allow_infinity=False),
                         min_size=1, max_size=200)


class TestMetrics:
    def test_summary_of_known_sample(self):
        stats = summarize_errors([10.0, 20.0, 30.0, 40.0, 100.0])
        assert stats.count == 5
        assert stats.median_cm == pytest.approx(30.0)
        assert stats.mean_cm == pytest.approx(40.0)
        assert stats.max_cm == pytest.approx(100.0)

    def test_empty_sample_rejected(self):
        with pytest.raises(EstimationError):
            summarize_errors([])
        with pytest.raises(EstimationError):
            summarize_errors([-1.0])

    def test_non_finite_sample_rejected_with_count(self):
        # Regression: every comparison against NaN is False, so the old
        # ``errors < 0`` guard accepted NaN and every quantile came back
        # NaN; +inf slipped the same guard and poisoned mean/max.  The
        # error must name how many samples are offending.
        with pytest.raises(EstimationError,
                           match=r"2 non-finite value\(s\) \(NaN/inf\) out of 4"):
            summarize_errors([10.0, float("nan"), np.nan, 30.0])
        with pytest.raises(EstimationError, match="non-finite"):
            summarize_errors([10.0, float("inf")])
        with pytest.raises(EstimationError, match="non-finite"):
            empirical_cdf([10.0, float("nan")])
        with pytest.raises(EstimationError, match="non-finite"):
            empirical_cdf([10.0, float("inf")])
        # Plain finite samples are unaffected.
        assert summarize_errors([10.0, 30.0]).median_cm == pytest.approx(20.0)

    @given(error_samples)
    def test_summary_invariants(self, sample):
        stats = summarize_errors(sample)
        assert stats.median_cm <= stats.p90_cm + 1e-9
        assert stats.p90_cm <= stats.p95_cm + 1e-9
        assert stats.p95_cm <= stats.max_cm + 1e-9
        assert 0.0 <= stats.mean_cm <= stats.max_cm + 1e-9

    @given(error_samples)
    def test_cdf_is_monotone_and_reaches_one(self, sample):
        grid, fractions = empirical_cdf(sample)
        assert np.all(np.diff(fractions) >= -1e-12)
        assert fractions[-1] == pytest.approx(1.0)

    def test_cdf_custom_grid(self):
        grid, fractions = empirical_cdf([10.0, 20.0, 30.0], grid_cm=[15.0, 25.0, 35.0])
        assert np.allclose(fractions, [1 / 3, 2 / 3, 1.0])

    def test_as_dict_round_trip(self):
        stats = summarize_errors([1.0, 2.0, 3.0])
        payload = stats.as_dict()
        assert payload["count"] == 3
        assert payload["median_cm"] == pytest.approx(2.0)


class TestReport:
    def test_format_table_alignment_and_title(self):
        text = format_table(["name", "value"], [["a", 1.0], ["bb", 22.5]],
                            title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_format_error_statistics(self):
        stats = {3: summarize_errors([10, 20, 30]), 6: summarize_errors([5, 6, 7])}
        text = format_error_statistics(stats, label="APs", title="accuracy")
        assert "APs" in text and "median (cm)" in text
        assert "accuracy" in text

    def test_format_cdf_series(self):
        cdfs = {"series-a": empirical_cdf([10.0, 20.0, 100.0])}
        text = format_cdf_series(cdfs)
        assert "series-a" in text and "p90 (cm)" in text

    def test_format_key_values(self):
        text = format_key_values({"median": 23.0, "mean": 31.0}, title="headline")
        assert "headline" in text and "median" in text
