"""Tests for the AP layer: buffer, access point, collisions and latency."""

import numpy as np
import pytest

from repro.ap import (
    APConfig,
    ArrayTrackAP,
    CircularFrameBuffer,
    CollisionResolver,
    LatencyModel,
    merge_channels,
    preamble_collision_probability,
)
from repro.array import SnapshotMatrix
from repro.channel import ChannelBuilder, ChannelModelConfig
from repro.core import find_peaks
from repro.errors import ConfigurationError
from repro.geometry import Point2D, bearing_deg, rectangular_room
from repro.geometry.vector import angle_difference_deg


def _snapshot(num_antennas=8, num_samples=10):
    return SnapshotMatrix(np.zeros((num_antennas, num_samples), dtype=complex))


class TestCircularBuffer:
    def test_capacity_enforced_with_overwrites(self):
        buffer = CircularFrameBuffer(capacity=3)
        for index in range(5):
            buffer.push(_snapshot(), f"client-{index % 2}", float(index))
        assert len(buffer) == 3
        assert buffer.overwrites == 2
        assert [entry.timestamp_s for entry in buffer] == [2.0, 3.0, 4.0]

    def test_entries_for_client_and_latest(self):
        buffer = CircularFrameBuffer(capacity=8)
        for index in range(4):
            buffer.push(_snapshot(), f"client-{index % 2}", float(index))
        assert len(buffer.entries_for_client("client-0")) == 2
        assert [e.timestamp_s for e in buffer.latest(2)] == [2.0, 3.0]

    def test_drain_empties_buffer(self):
        buffer = CircularFrameBuffer(capacity=4)
        buffer.push(_snapshot(), "c", 0.0)
        assert len(buffer.drain()) == 1
        assert len(buffer) == 0

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            CircularFrameBuffer(capacity=0)


class TestArrayTrackAP:
    @pytest.fixture
    def room_and_channel(self):
        room = rectangular_room(20.0, 10.0)
        builder = ChannelBuilder(room, ChannelModelConfig(max_reflections=1))
        return room, builder

    def test_overhear_buffers_frames_and_computes_spectra(self, room_and_channel):
        _, builder = room_and_channel
        ap = ArrayTrackAP("1", Point2D(1.0, 1.0), orientation_deg=45.0,
                          config=APConfig(apply_phase_offsets=False),
                          rng=np.random.default_rng(0))
        client = Point2D(10.0, 6.0)
        channel = builder.build(client, ap.position, client_id="c1", ap_id="1")
        ap.overhear(channel, timestamp_s=0.0)
        ap.overhear(channel, timestamp_s=0.03)
        assert len(ap.buffer) == 2
        spectra = ap.spectra_for_client("c1")
        assert len(spectra) == 2
        true_local = (bearing_deg(ap.position, client) - 45.0) % 360.0
        peaks = find_peaks(spectra[0], min_relative_height=0.2)
        assert any(angle_difference_deg(p.angle_deg, true_local) < 6.0 for p in peaks)

    def test_calibration_makes_offsets_harmless(self, room_and_channel):
        """With random radio offsets plus calibration, the AoA peak is unchanged."""
        _, builder = room_and_channel
        client = Point2D(12.0, 7.0)
        rng = np.random.default_rng(3)
        ideal = ArrayTrackAP("1", Point2D(1.0, 1.0), orientation_deg=30.0,
                             config=APConfig(apply_phase_offsets=False), rng=rng)
        calibrated = ArrayTrackAP("1", Point2D(1.0, 1.0), orientation_deg=30.0,
                                  config=APConfig(apply_phase_offsets=True),
                                  rng=np.random.default_rng(4))
        assert calibrated.is_calibrated
        channel = builder.build(client, ideal.position, client_id="c", ap_id="1")
        ideal_spectrum = ideal.compute_spectrum(ideal.overhear(channel))
        calibrated_spectrum = calibrated.compute_spectrum(calibrated.overhear(channel))
        ideal_peak = find_peaks(ideal_spectrum)[0].angle_deg
        calibrated_peak = find_peaks(calibrated_spectrum)[0].angle_deg
        assert angle_difference_deg(ideal_peak, calibrated_peak) < 5.0

    def test_antenna_count_configurable(self, room_and_channel):
        _, builder = room_and_channel
        ap = ArrayTrackAP("1", Point2D(1.0, 1.0),
                          config=APConfig(num_antennas=4, use_symmetry_antenna=False,
                                          apply_phase_offsets=False),
                          rng=np.random.default_rng(0))
        channel = builder.build(Point2D(10.0, 5.0), ap.position, client_id="c", ap_id="1")
        entry = ap.overhear(channel)
        assert entry.snapshots.samples.shape[0] == 4

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            APConfig(num_antennas=1)
        with pytest.raises(ConfigurationError):
            APConfig(snapshots_per_frame=0)


class TestCollisions:
    def test_preamble_collision_probability_is_small_and_monotone(self):
        # Section 4.3.5 quotes 0.6% for 1000-byte packets (at a low data
        # rate); the probability must be well below a few percent at the
        # base rate and shrink as frames get longer or slower.
        low_rate = preamble_collision_probability(1000, 1.0)
        assert low_rate < 0.01
        assert (preamble_collision_probability(1000, 54.0)
                > preamble_collision_probability(1500, 54.0))
        assert (preamble_collision_probability(1000, 54.0)
                > preamble_collision_probability(1000, 6.0))

    def test_cancellation_recovers_second_transmitter(self):
        room = rectangular_room(20.0, 10.0)
        builder = ChannelBuilder(room, ChannelModelConfig(max_reflections=0,
                                                          scatterers_per_reflection=0))
        ap = ArrayTrackAP("1", Point2D(1.0, 5.0), orientation_deg=90.0,
                          config=APConfig(apply_phase_offsets=False,
                                          use_symmetry_antenna=False),
                          rng=np.random.default_rng(0))
        first_pos, second_pos = Point2D(15.0, 8.0), Point2D(12.0, 2.0)
        first = builder.build(first_pos, ap.position, client_id="a", ap_id="1")
        second = builder.build(second_pos, ap.position, client_id="b", ap_id="1")
        spectrum_first = ap.compute_spectrum(ap.overhear(first))
        ap.clear()
        combined = merge_channels(first, second, ap_id="1")
        spectrum_combined = ap.compute_spectrum(ap.overhear(combined))
        recovered = CollisionResolver().cancel(spectrum_first, spectrum_combined)
        local_second = (bearing_deg(ap.position, second_pos) - 90.0) % 360.0
        peaks = find_peaks(recovered, min_relative_height=0.2)
        assert peaks, "cancellation removed everything"
        best = min(angle_difference_deg(p.angle_deg, local_second) for p in peaks)
        mirror = min(angle_difference_deg(360 - p.angle_deg, local_second) for p in peaks)
        assert min(best, mirror) < 8.0


class TestLatencyModel:
    def test_transfer_time_matches_paper(self):
        # Section 4.4: 10 samples x 32 bits x 8 radios over 1 Mbit/s = 2.56 ms.
        model = LatencyModel()
        assert model.transfer_s == pytest.approx(2.56e-3)

    def test_traffic_rate_matches_paper(self):
        # Section 4.3.3: 0.0256 Mbit/s at a 100 ms refresh interval.
        assert LatencyModel().traffic_rate_bps(0.1) == pytest.approx(0.0256e6)

    def test_breakdown_totals_about_100ms(self):
        breakdown = LatencyModel().breakdown(payload_bytes=1500, bitrate_mbps=54.0)
        assert breakdown.added_after_frame_end_s == pytest.approx(0.1, abs=0.02)

    def test_long_slow_frame_absorbs_processing(self):
        breakdown = LatencyModel(processing_s=0.005).breakdown(1500, 1.0)
        assert breakdown.added_after_frame_end_s == 0.0

    def test_invalid_model_rejected(self):
        with pytest.raises(ConfigurationError):
            LatencyModel(num_snapshots=0)
        with pytest.raises(ConfigurationError):
            LatencyModel().traffic_rate_bps(0.0)
