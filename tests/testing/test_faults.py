"""Tests for the deterministic fault-injection harness itself.

The harness is the foundation the whole resilience suite stands on, so its
own determinism contract is tested first: same spec, same seed => same
firing schedule, in-process and across the env-var round trip.
"""

import json
import os

import numpy as np
import pytest

from repro.core import AoASpectrum, default_angle_grid
from repro.errors import ConfigurationError, FaultInjectedError
from repro.testing import faults


@pytest.fixture(autouse=True)
def clean_harness():
    """Every test starts and ends fault-free (and env-clean)."""
    faults.deactivate()
    yield
    faults.deactivate()


def _spectrum():
    angles = default_angle_grid(1.0)
    return AoASpectrum(angles, np.ones_like(angles), ap_position=None,
                       client_id="c0", ap_id="ap0")


class TestFaultSpec:
    def test_validation_rejects_unknown_kind_stage_and_bad_numbers(self):
        with pytest.raises(ConfigurationError, match="unknown fault kind"):
            faults.FaultSpec(kind="explode-the-moon")
        with pytest.raises(ConfigurationError, match="unknown fault stage"):
            faults.FaultSpec(kind="slow-worker", stage="mid-attach")
        with pytest.raises(ConfigurationError, match="probability"):
            faults.FaultSpec(kind="slow-worker", probability=1.5)
        with pytest.raises(ConfigurationError, match="times"):
            faults.FaultSpec(kind="slow-worker", times=-1)
        with pytest.raises(ConfigurationError, match="delay_s"):
            faults.FaultSpec(kind="slow-worker", delay_s=-0.1)

    def test_dict_round_trip_and_unknown_key_rejection(self):
        spec = faults.FaultSpec(kind="kill-worker-mid-shard",
                                stage="after-attach", probability=0.5,
                                times=2, seed=7)
        assert faults.FaultSpec.from_dict(spec.to_dict()) == spec
        with pytest.raises(ConfigurationError, match="typo_key"):
            faults.FaultSpec.from_dict({"kind": "slow-worker",
                                        "typo_key": 1})
        with pytest.raises(ConfigurationError, match="needs a 'kind'"):
            faults.FaultSpec.from_dict({"stage": "before-attach"})


class TestActivation:
    def test_activate_exports_env_and_deactivate_clears_it(self):
        spec = faults.FaultSpec(kind="thread-shard-failure", times=1)
        faults.activate(spec)
        assert faults.ENV_VAR in os.environ
        decoded = json.loads(os.environ[faults.ENV_VAR])
        assert decoded == [spec.to_dict()]
        assert faults.active_specs() == (spec,)
        faults.deactivate()
        assert faults.ENV_VAR not in os.environ
        assert faults.active_specs() == ()

    def test_env_round_trip_resolves_lazily_like_a_spawned_worker(self):
        spec = faults.FaultSpec(kind="shm-allocation-failure", times=3,
                                probability=0.5, seed=11)
        faults.activate(spec)
        # Simulate what a freshly spawned worker does: no programmatic
        # activation, just the inherited environment variable.
        faults._ACTIVE = None
        assert faults.active_specs() == (spec,)

    def test_activate_json_rejects_garbage(self):
        with pytest.raises(ConfigurationError, match="invalid fault plan"):
            faults.activate_json("{not json")
        with pytest.raises(ConfigurationError, match="JSON list"):
            faults.activate_json('"just a string"')

    def test_injected_faults_context_manager_restores_clean_state(self):
        with faults.injected_faults(
                faults.FaultSpec(kind="thread-shard-failure")):
            with pytest.raises(FaultInjectedError):
                faults.thread_shard()
        faults.thread_shard()   # no active plan: a no-op
        assert faults.ENV_VAR not in os.environ


class TestDeterminism:
    def test_probability_stream_is_seeded_and_reproducible(self):
        def schedule(seed):
            faults.activate(faults.FaultSpec(kind="thread-shard-failure",
                                             probability=0.3, seed=seed))
            fired = []
            for _ in range(40):
                try:
                    faults.thread_shard()
                    fired.append(False)
                except FaultInjectedError:
                    fired.append(True)
            faults.deactivate()
            return fired

        assert schedule(5) == schedule(5)
        assert schedule(5) != schedule(6)
        assert any(schedule(5)) and not all(schedule(5))

    def test_times_budget_bounds_firings_in_process(self):
        faults.activate(faults.FaultSpec(kind="thread-shard-failure",
                                         times=2))
        fired = 0
        for _ in range(10):
            try:
                faults.thread_shard()
            except FaultInjectedError:
                fired += 1
        assert fired == 2
        assert faults.fired_counts() == {"thread-shard-failure": 2}

    def test_token_dir_budget_is_claimed_atomically(self, tmp_path):
        spec = faults.FaultSpec(kind="shm-allocation-failure", times=2,
                                token_dir=str(tmp_path))
        faults.activate(spec)
        fired = 0
        for _ in range(10):
            try:
                faults.shm_allocation()
            except FaultInjectedError:
                fired += 1
        assert fired == 2
        tokens = sorted(p.name for p in tmp_path.iterdir())
        assert tokens == ["shm-allocation-failure.0000.token",
                          "shm-allocation-failure.0001.token"]

    def test_token_budget_survives_simulated_process_restart(self, tmp_path):
        spec = faults.FaultSpec(kind="shm-allocation-failure", times=1,
                                token_dir=str(tmp_path))
        faults.activate(spec)
        with pytest.raises(FaultInjectedError):
            faults.shm_allocation()
        faults._ACTIVE = None   # "new process" inherits env + token dir
        faults.shm_allocation()   # budget spent: must not fire again
        assert faults.fired_counts() == {"shm-allocation-failure": 0}


class TestHooks:
    def test_stage_restriction_matches_only_that_stage(self):
        faults.activate(faults.FaultSpec(kind="slow-worker",
                                         stage="after-attach",
                                         delay_s=0.0))
        faults.worker_shard("before-attach")
        faults.worker_shard("before-return")
        assert faults.fired_counts() == {"slow-worker": 0}
        faults.worker_shard("after-attach")
        assert faults.fired_counts() == {"slow-worker": 1}

    def test_poison_returns_copy_with_nan_and_leaves_input_alone(self):
        spectrum = _spectrum()
        assert faults.poison(spectrum) is spectrum   # cold: pass-through
        faults.activate(faults.FaultSpec(kind="poison-frame", times=1))
        poisoned = faults.poison(spectrum)
        assert poisoned is not spectrum
        assert np.isnan(poisoned.power[0])
        assert not np.isnan(spectrum.power).any()
        assert faults.poison(spectrum) is spectrum   # budget spent

    def test_hooks_are_noops_without_a_plan(self):
        faults.worker_shard("before-attach")
        faults.shm_allocation()
        faults.thread_shard()
        assert faults.fired_counts() == {}
