"""Tests for the ArrayTrack server backend and the client tracker."""

import numpy as np
import pytest

from repro.core import AoASpectrum, LocalizerConfig, LocationEstimate, default_angle_grid
from repro.errors import ConfigurationError, EstimationError
from repro.geometry import Point2D, bearing_deg
from repro.server import ArrayTrackServer, ClientTracker, ServerConfig


def _spectrum_towards(ap_position, target, width=3.0, timestamp_s=0.0,
                      extra_peak=None):
    angles = default_angle_grid(1.0)
    bearing = bearing_deg(ap_position, target)
    distance = np.minimum(np.abs(angles - bearing), 360 - np.abs(angles - bearing))
    power = np.exp(-0.5 * (distance / width) ** 2) + 1e-4
    if extra_peak is not None:
        extra_distance = np.minimum(np.abs(angles - extra_peak),
                                    360 - np.abs(angles - extra_peak))
        power += 0.9 * np.exp(-0.5 * (extra_distance / width) ** 2)
    return AoASpectrum(angles, power, ap_position=ap_position,
                       ap_id=f"ap@{ap_position.x:.0f},{ap_position.y:.0f}",
                       timestamp_s=timestamp_s)


BOUNDS = (0.0, 0.0, 20.0, 10.0)
TARGET = Point2D(12.0, 6.0)
AP_POSITIONS = [Point2D(1.0, 1.0), Point2D(19.0, 1.0), Point2D(10.0, 9.5)]


class TestArrayTrackServer:
    def _server(self, **config_kwargs):
        config = ServerConfig(localizer=LocalizerConfig(grid_resolution_m=0.2),
                              **config_kwargs)
        return ArrayTrackServer(BOUNDS, config)

    def test_localize_spectra_finds_target(self):
        server = self._server()
        spectra = {f"ap{i}": [_spectrum_towards(p, TARGET)]
                   for i, p in enumerate(AP_POSITIONS)}
        estimate = server.localize_spectra(spectra, client_id="c")  # repro-lint: disable=RPR008 -- regression coverage for the deprecated shim until its removal
        assert isinstance(estimate, LocationEstimate)
        assert estimate.position.distance_to(TARGET) < 0.3
        assert estimate.client_id == "c"

    def test_multipath_suppression_removes_unstable_ghost(self):
        """A reflection peak present in only one frame should be suppressed."""
        ghost_bearing = 200.0
        spectra = {
            "ap0": [
                _spectrum_towards(AP_POSITIONS[0], TARGET, timestamp_s=0.0,
                                  extra_peak=ghost_bearing),
                _spectrum_towards(AP_POSITIONS[0], TARGET, timestamp_s=0.03),
            ],
            "ap1": [_spectrum_towards(AP_POSITIONS[1], TARGET, timestamp_s=0.0)],
            "ap2": [_spectrum_towards(AP_POSITIONS[2], TARGET, timestamp_s=0.0)],
        }
        with_suppression = self._server(enable_multipath_suppression=True)
        estimate = with_suppression.localize_spectra(spectra)  # repro-lint: disable=RPR008 -- regression coverage for the deprecated shim until its removal
        assert estimate.position.distance_to(TARGET) < 0.3

    def test_no_spectra_raises(self):
        with pytest.raises(EstimationError):
            self._server().localize_spectra({})  # repro-lint: disable=RPR008 -- regression coverage for the deprecated shim until its removal

    def test_localize_client_requires_aps(self):
        with pytest.raises(ConfigurationError):
            self._server().localize_client([], "c")

    def test_latency_breakdown_uses_measured_processing(self):
        server = self._server(measure_processing_time=True)
        spectra = {f"ap{i}": [_spectrum_towards(p, TARGET)]
                   for i, p in enumerate(AP_POSITIONS)}
        server.localize_spectra(spectra)  # repro-lint: disable=RPR008 -- regression coverage for the deprecated shim until its removal
        assert server.last_processing_s is not None
        breakdown = server.latency_breakdown(use_measured_processing=True)
        assert breakdown.processing_s == pytest.approx(server.last_processing_s)
        paper = server.latency_breakdown(use_measured_processing=False)
        assert paper.processing_s == pytest.approx(0.1)

    def _batch_of_clients(self, count):
        rng = np.random.default_rng(11)
        clients = {}
        for index in range(count):
            target = Point2D(rng.uniform(1.0, 19.0), rng.uniform(1.0, 9.0))
            clients[f"c{index}"] = {
                f"ap{i}": [_spectrum_towards(p, target)]
                for i, p in enumerate(AP_POSITIONS)
            }
        return clients

    def test_localize_batch_matches_sequential_loop(self):
        server = self._server()
        clients = self._batch_of_clients(5)
        sequential = {client_id: server.localize_spectra(spectra, client_id)  # repro-lint: disable=RPR008 -- regression coverage for the deprecated shim until its removal
                      for client_id, spectra in clients.items()}
        batched = server.localize_batch(clients)
        assert set(batched) == set(clients)
        for client_id in clients:
            assert batched[client_id].position.distance_to(
                sequential[client_id].position) <= 1e-9
            assert batched[client_id].client_id == client_id

    def test_localize_batch_runs_multipath_suppression_per_client(self):
        """Each client's per-AP frames are suppressed exactly as when alone."""
        ghost_bearing = 200.0
        spectra = {
            "ap0": [
                _spectrum_towards(AP_POSITIONS[0], TARGET, timestamp_s=0.0,
                                  extra_peak=ghost_bearing),
                _spectrum_towards(AP_POSITIONS[0], TARGET, timestamp_s=0.03),
            ],
            "ap1": [_spectrum_towards(AP_POSITIONS[1], TARGET, timestamp_s=0.0)],
            "ap2": [_spectrum_towards(AP_POSITIONS[2], TARGET, timestamp_s=0.0)],
        }
        server = self._server(enable_multipath_suppression=True)
        single = server.localize_spectra(spectra, "c0")  # repro-lint: disable=RPR008 -- regression coverage for the deprecated shim until its removal
        batched = server.localize_batch({"c0": spectra})
        assert batched["c0"].position.distance_to(single.position) <= 1e-9
        assert batched["c0"].position.distance_to(TARGET) < 0.3

    def test_localize_batch_rejects_empty_input(self):
        server = self._server()
        with pytest.raises(EstimationError):
            server.localize_batch({})
        with pytest.raises(EstimationError):
            server.localize_batch({"c": {}})

    def test_localize_clients_requires_aps(self):
        with pytest.raises(ConfigurationError):
            self._server().localize_clients([], ["c"])

    def test_synthesize_batch_skips_server_side_suppression(self):
        """Pre-suppressed spectra must enter the synthesis untouched."""
        ghost_bearing = 200.0
        ghost = _spectrum_towards(AP_POSITIONS[0], TARGET, timestamp_s=0.0,
                                  extra_peak=ghost_bearing)
        companion = _spectrum_towards(AP_POSITIONS[0], TARGET, timestamp_s=0.03)
        others = [_spectrum_towards(p, TARGET) for p in AP_POSITIONS[1:]]
        server = self._server(enable_multipath_suppression=True)
        # localize_batch groups ap0's pair and folds the one suppressed
        # primary (3 spectra total); synthesize_batch folds exactly what it
        # is given (all 4 raw spectra) -- no second suppression pass.
        suppressed = server.localize_batch(
            {"c": {"ap0": [ghost, companion],
                   "ap1": [others[0]], "ap2": [others[1]]}})["c"]
        raw = server.synthesize_batch({"c": [ghost, companion] + others})["c"]
        assert suppressed.position.distance_to(TARGET) < 0.3
        assert raw.likelihood != suppressed.likelihood

    def test_synthesize_batch_matches_unsuppressed_localize_batch(self):
        server = self._server(enable_multipath_suppression=False)
        spectra = {f"ap{i}": [_spectrum_towards(p, TARGET)]
                   for i, p in enumerate(AP_POSITIONS)}
        via_batch = server.localize_batch({"c": spectra})["c"]
        via_synthesis = server.synthesize_batch(
            {"c": [s[0] for s in spectra.values()]})["c"]
        assert via_batch.position == via_synthesis.position
        assert via_batch.likelihood == via_synthesis.likelihood

    def test_synthesize_batch_rejects_empty_input(self):
        server = self._server()
        with pytest.raises(EstimationError):
            server.synthesize_batch({})
        with pytest.raises(EstimationError, match="'c'"):
            server.synthesize_batch({"c": []})

    def test_localize_batch_ragged_ap_subsets(self):
        """Clients heard by different AP subsets localize in one batch."""
        server = self._server()
        rng = np.random.default_rng(13)
        clients, sequential = {}, {}
        for index, subset in enumerate(([0, 1, 2], [0, 2], [1, 2])):
            target = Point2D(rng.uniform(2.0, 18.0), rng.uniform(2.0, 8.0))
            spectra = {f"ap{i}": [_spectrum_towards(AP_POSITIONS[i], target)]
                       for i in subset}
            clients[f"c{index}"] = spectra
        sequential = {cid: server.localize_spectra(s, cid)  # repro-lint: disable=RPR008 -- regression coverage for the deprecated shim until its removal
                      for cid, s in clients.items()}
        batched = server.localize_batch(clients)
        for cid in clients:
            assert batched[cid].position.distance_to(
                sequential[cid].position) <= 1e-9
            assert batched[cid].num_aps == sequential[cid].num_aps


class TestClientTracker:
    def _estimate(self, x, y):
        return LocationEstimate(position=Point2D(x, y), likelihood=1.0, num_aps=3)

    def test_first_fix_is_not_smoothed(self):
        tracker = ClientTracker(smoothing_factor=0.5)
        point = tracker.update("c", self._estimate(1.0, 1.0), 0.0)
        assert point.smoothed_position == Point2D(1.0, 1.0)

    def test_smoothing_blends_consecutive_fixes(self):
        tracker = ClientTracker(smoothing_factor=0.5)
        tracker.update("c", self._estimate(0.0, 0.0), 0.0)
        point = tracker.update("c", self._estimate(2.0, 0.0), 0.1)
        assert point.smoothed_position.x == pytest.approx(1.0)

    def test_track_history_and_clients(self):
        tracker = ClientTracker()
        for index in range(5):
            tracker.update("a", self._estimate(float(index), 0.0), float(index))
        tracker.update("b", self._estimate(0.0, 0.0), 0.0)
        assert tracker.clients() == ["a", "b"]
        assert len(tracker.track("a")) == 5
        assert tracker.latest("a").position.x == pytest.approx(4.0)
        assert tracker.latest("missing") is None

    def test_max_history_trims_old_fixes(self):
        tracker = ClientTracker(max_history=3)
        for index in range(6):
            tracker.update("a", self._estimate(float(index), 0.0), float(index))
        track = tracker.track("a")
        assert len(track) == 3
        assert track[0].position.x == pytest.approx(3.0)

    def test_path_length(self):
        tracker = ClientTracker(smoothing_factor=1.0)
        for index in range(4):
            tracker.update("a", self._estimate(float(index), 0.0), float(index))
        assert tracker.path_length_m("a") == pytest.approx(3.0)
        assert tracker.path_length_m("unknown") == 0.0

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            ClientTracker(smoothing_factor=0.0)
        with pytest.raises(ConfigurationError):
            ClientTracker(max_history=0)
        with pytest.raises(ConfigurationError):
            ClientTracker(on_out_of_order="panic")

    def test_out_of_order_fix_inserted_chronologically(self):
        tracker = ClientTracker(smoothing_factor=1.0)
        tracker.update("a", self._estimate(0.0, 0.0), 0.0)
        tracker.update("a", self._estimate(2.0, 0.0), 2.0)
        late = tracker.update("a", self._estimate(1.0, 0.0), 1.0)
        track = tracker.track("a")
        assert [p.timestamp_s for p in track] == [0.0, 1.0, 2.0]
        assert track[1] == late
        # latest() still reports the chronologically newest fix.
        assert tracker.latest("a").timestamp_s == 2.0
        assert tracker.latest("a").position.x == pytest.approx(2.0)
        # The path walks 0 -> 1 -> 2, not 0 -> 2 -> 1 (which would be 3 m).
        assert tracker.path_length_m("a") == pytest.approx(2.0)

    def test_out_of_order_fix_recomputes_smoothing_downstream(self):
        tracker = ClientTracker(smoothing_factor=0.5)
        tracker.update("a", self._estimate(0.0, 0.0), 0.0)
        tracker.update("a", self._estimate(4.0, 0.0), 2.0)
        tracker.update("a", self._estimate(2.0, 0.0), 1.0)
        track = tracker.track("a")
        # EMA along chronological order: 0, then 0.5*2, then mid(1, 4).
        assert track[0].smoothed_position.x == pytest.approx(0.0)
        assert track[1].smoothed_position.x == pytest.approx(1.0)
        assert track[2].smoothed_position.x == pytest.approx(2.5)

    def test_duplicate_timestamp_inserted_after_existing(self):
        tracker = ClientTracker(smoothing_factor=1.0)
        tracker.update("a", self._estimate(0.0, 0.0), 1.0)
        duplicate = tracker.update("a", self._estimate(5.0, 0.0), 1.0)
        track = tracker.track("a")
        assert [p.position.x for p in track] == [0.0, 5.0]
        assert tracker.latest("a") == duplicate

    def test_reject_policy_raises_on_regression_and_duplicate(self):
        tracker = ClientTracker(on_out_of_order="reject")
        tracker.update("a", self._estimate(0.0, 0.0), 1.0)
        with pytest.raises(EstimationError, match="out-of-order"):
            tracker.update("a", self._estimate(1.0, 0.0), 0.5)
        with pytest.raises(EstimationError, match="out-of-order"):
            tracker.update("a", self._estimate(1.0, 0.0), 1.0)
        # The failed updates left the track untouched; advancing works.
        assert len(tracker.track("a")) == 1
        tracker.update("a", self._estimate(2.0, 0.0), 2.0)
        assert tracker.latest("a").timestamp_s == 2.0

    def test_tracker_config_builds_equivalent_tracker(self):
        from repro.server import TrackerConfig

        tracker = TrackerConfig(smoothing_factor=0.4, max_history=2,
                                on_out_of_order="reject").build()
        assert tracker.smoothing_factor == 0.4
        assert tracker.max_history == 2
        assert tracker.on_out_of_order == "reject"
