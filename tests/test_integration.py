"""End-to-end integration tests spanning every layer of the system."""

import numpy as np

from repro import quickstart  # repro-lint: disable=RPR008 -- regression coverage for the deprecated shim until its removal
from repro.core import LocalizerConfig
from repro.geometry import Point2D
from repro.channel import random_waypoint_track
from repro.server import ArrayTrackServer, ClientTracker, ServerConfig
from repro.testbed import ScenarioConfig, SimulatedDeployment, build_office_testbed


class TestFullPipeline:
    def test_quickstart_localizes_within_two_metres(self):
        estimate, ground_truth = quickstart.localize_one_client(
            grid_resolution_m=0.3)
        assert estimate.error_to(ground_truth) < 2.0
        assert estimate.num_aps == 6

    def test_quickstart_batch_helper(self):
        errors = quickstart.localize_all_clients(num_clients=3, grid_resolution_m=0.5)
        assert len(errors) == 3
        assert all(value >= 0.0 for value in errors.values())

    def test_more_aps_never_catastrophically_worse(self):
        """Median error over a handful of clients should not grow with APs."""
        testbed = build_office_testbed()
        deployment = SimulatedDeployment(testbed, ScenarioConfig(seed=11))
        server = ArrayTrackServer(
            testbed.bounds,
            ServerConfig(localizer=LocalizerConfig(grid_resolution_m=0.4,
                                                   spectrum_floor=0.05)))
        errors = {3: [], 6: []}
        for client_id in testbed.client_ids()[:6]:
            deployment.clear()
            spectra = deployment.collect_client_spectra(client_id)
            truth = testbed.client_position(client_id)
            subset = {ap: spectra[ap] for ap in ["1", "3", "5"] if ap in spectra}
            errors[3].append(server.localize_spectra(subset, client_id).error_to(truth))  # repro-lint: disable=RPR008 -- regression coverage for the deprecated shim until its removal
            errors[6].append(server.localize_spectra(spectra, client_id).error_to(truth))  # repro-lint: disable=RPR008 -- regression coverage for the deprecated shim until its removal
        assert np.median(errors[6]) <= np.median(errors[3]) * 1.5

    def test_batched_fixes_match_sequential_over_simulated_deployment(self):
        """Full-pipeline spectra: batch API agrees with per-client fixes."""
        testbed = build_office_testbed()
        deployment = SimulatedDeployment(testbed, ScenarioConfig(seed=23))
        server = ArrayTrackServer(
            testbed.bounds,
            ServerConfig(localizer=LocalizerConfig(grid_resolution_m=0.4,
                                                   spectrum_floor=0.05)))
        client_ids = testbed.client_ids()[:4]
        spectra_by_client = {}
        for client_id in client_ids:
            deployment.clear()
            spectra_by_client[client_id] = deployment.collect_client_spectra(
                client_id)
        sequential = {client_id: server.localize_spectra(spectra, client_id)  # repro-lint: disable=RPR008 -- regression coverage for the deprecated shim until its removal
                      for client_id, spectra in spectra_by_client.items()}
        batched = server.localize_batch(spectra_by_client)
        for client_id in client_ids:
            assert batched[client_id].position.distance_to(
                sequential[client_id].position) <= 1e-9
            assert batched[client_id].num_aps == sequential[client_id].num_aps

    def test_localize_clients_end_to_end(self):
        """AP-level batch entry point produces fixes for every buffered client."""
        testbed = build_office_testbed()
        deployment = SimulatedDeployment(testbed,
                                         ScenarioConfig(frames_per_client=1,
                                                        seed=31))
        server = ArrayTrackServer(
            testbed.bounds,
            ServerConfig(localizer=LocalizerConfig(grid_resolution_m=0.4,
                                                   spectrum_floor=0.05)))
        client_ids = testbed.client_ids()[:3]
        for client_id in client_ids:
            deployment.capture_client(client_id)
        estimates = server.localize_clients(list(deployment.aps.values()),
                                            client_ids)
        assert set(estimates) == set(client_ids)
        for client_id in client_ids:
            truth = testbed.client_position(client_id)
            assert estimates[client_id].error_to(truth) < 4.0

    def test_tracking_a_walking_client(self):
        """Localize a client at several waypoints and track the trajectory."""
        testbed = build_office_testbed()
        deployment = SimulatedDeployment(testbed,
                                         ScenarioConfig(frames_per_client=1, seed=5))
        server = ArrayTrackServer(
            testbed.bounds,
            ServerConfig(localizer=LocalizerConfig(grid_resolution_m=0.4,
                                                   spectrum_floor=0.05)))
        tracker = ClientTracker(smoothing_factor=0.7)
        waypoints = random_waypoint_track(Point2D(6.0, 4.0), Point2D(14.0, 4.0), 4)
        errors = []
        for index, waypoint in enumerate(waypoints):
            deployment.clear()
            deployment.capture_client("walker", positions=[waypoint],
                                      start_time_s=index * 0.5)
            spectra = deployment.spectra_for_client("walker")
            estimate = server.localize_spectra(spectra, "walker")  # repro-lint: disable=RPR008 -- regression coverage for the deprecated shim until its removal
            point = tracker.update("walker", estimate, index * 0.5)
            errors.append(point.position.distance_to(waypoint))
        assert len(tracker.track("walker")) == len(waypoints)
        assert float(np.median(errors)) < 2.0
        assert tracker.path_length_m("walker") > 0.0
