"""Tests for the resilience layer: supervision, breaker, admission control.

The contract under test is ISSUE 10's acceptance criterion: an injected
worker crash mid-batch recovers via retry with bit-identical results and
zero leaked shm segments, the circuit breaker degrades process -> thread ->
serial and recovers half-open, and ingest sheds/rejects under pressure --
all deterministically, via :mod:`repro.testing.faults`.
"""

import glob
import threading
import time

import numpy as np
import pytest

from repro.api import ArrayTrackConfig, ArrayTrackService
from repro.api import _procpool
from repro.api._procpool import (SEGMENT_PREFIX, ProcessShardPool,
                                 live_segments, shm_leak_events)
from repro.api._resilience import CircuitBreaker, backend_ladder
from repro.ap.buffer import BufferEntry
from repro.array.receiver import SnapshotMatrix
from repro.core import AoASpectrum, default_angle_grid
from repro.errors import (BackpressureError, ConfigurationError,
                          PoisonFrameError, PoolSupervisionError)
from repro.geometry import Point2D, bearing_deg
from repro.testing import faults

BOUNDS = (0.0, 0.0, 20.0, 10.0)
AP_POSITIONS = [Point2D(1.0, 1.0), Point2D(19.0, 1.0), Point2D(10.0, 9.5)]


@pytest.fixture(autouse=True)
def clean_faults_and_segments():
    """Every test starts fault-free and must leak no shm segments."""
    faults.deactivate()
    yield
    faults.deactivate()
    assert live_segments() == frozenset()
    assert glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*") == []


def _spectrum_towards(ap_position, target, timestamp_s=0.0, client_id=""):
    angles = default_angle_grid(1.0)
    bearing = bearing_deg(ap_position, target)
    distance = np.minimum(np.abs(angles - bearing),
                          360 - np.abs(angles - bearing))
    power = np.exp(-0.5 * (distance / 3.0) ** 2) + 1e-4
    return AoASpectrum(angles, power, ap_position=ap_position,
                       ap_id=f"ap@{ap_position.x:.0f},{ap_position.y:.0f}",
                       client_id=client_id, timestamp_s=timestamp_s)


def _clients(count, seed=3):
    rng = np.random.default_rng(seed)
    clients = {}
    for index in range(count):
        target = Point2D(rng.uniform(2, 18), rng.uniform(2, 8))
        clients[f"c{index}"] = {
            f"ap{i}": [_spectrum_towards(p, target)]
            for i, p in enumerate(AP_POSITIONS)}
    return clients


def _service(parallel=None, **overrides):
    config = ArrayTrackConfig(bounds=BOUNDS).updated(
        {"server.localizer.grid_resolution_m": 0.25, **overrides})
    if parallel is not None:
        config = config.updated({
            f"parallel.{key}": value for key, value in parallel.items()})
    return ArrayTrackService(config)


def _process_service(**overrides):
    return _service(parallel={"backend": "process", "num_workers": 2,
                              "min_clients_per_worker": 2}, **overrides)


def _assert_identical(recovered, serial):
    assert list(recovered) == list(serial)
    for key in serial:
        assert recovered[key].position.x == serial[key].position.x
        assert recovered[key].position.y == serial[key].position.y
        assert recovered[key].likelihood == serial[key].likelihood


@pytest.fixture(scope="module")
def serial_fixes():
    """The serial ground truth every recovered batch must equal exactly."""
    with _service() as service:
        return service.localize_many(_clients(6))


# ----------------------------------------------------------------------
# Satellite 3: crash at every stage of the worker's shm lifecycle
# ----------------------------------------------------------------------
class TestWorkerCrashRecovery:
    @pytest.mark.parametrize("stage", list(faults.STAGES))
    def test_crash_at_stage_recovers_bit_identically(self, stage, tmp_path,
                                                     serial_fixes):
        faults.activate(faults.FaultSpec(
            kind="kill-worker-mid-shard", stage=stage, times=1,
            token_dir=str(tmp_path)))
        with _process_service() as service:
            recovered = service.localize_many(_clients(6))
            _assert_identical(recovered, serial_fixes)
            stats = service._procpool.stats
            assert stats.broken_pools >= 1
            assert stats.rebuilds >= 1
            assert stats.shard_retries >= 1
            health = service.health()
            assert health["breaker"]["state"] == "closed"
            assert health["backend"]["active"] == "process"
            # Exactly one worker died, and it died by injection.
            assert len(list(tmp_path.iterdir())) == 1
        assert live_segments() == frozenset()
        assert glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*") == []

    def test_shard_timeout_recovers_bit_identically(self, tmp_path,
                                                    serial_fixes):
        faults.activate(faults.FaultSpec(
            kind="slow-worker", stage="after-attach", times=1, delay_s=30.0,
            token_dir=str(tmp_path)))
        with _process_service(
                **{"resilience.shard_timeout_s": 5.0}) as service:
            start = time.monotonic()
            recovered = service.localize_many(_clients(6))
            # The wedged shard was deadlined and retried, far faster than
            # the injected 30 s sleep.
            assert time.monotonic() - start < 25.0
            _assert_identical(recovered, serial_fixes)
            assert service._procpool.stats.shard_timeouts >= 1
            assert service._procpool.stats.rebuilds >= 1


# ----------------------------------------------------------------------
# The degradation ladder: process -> thread -> serial and back (half-open)
# ----------------------------------------------------------------------
class TestDegradationLadder:
    def test_exhausted_retries_degrade_to_thread_then_probe_back(
            self, serial_fixes):
        # Kill every worker task, leave no retry budget, and trip the
        # breaker on the first failure; recovery window held open wide.
        faults.activate(faults.FaultSpec(kind="kill-worker-mid-shard"))
        service = _process_service(
            **{"resilience.max_retries": 0,
               "resilience.breaker_threshold": 1,
               "resilience.breaker_recovery_s": 1000.0})
        with service:
            # The batch is served anyway -- by the thread rung -- and is
            # still bit-identical.
            _assert_identical(service.localize_many(_clients(6)),
                              serial_fixes)
            health = service.health()
            assert health["backend"]["active"] == "thread"
            assert health["breaker"]["state"] == "open"
            assert health["fallbacks"]["served_by"] == {"thread": 1}
            assert "PoolSupervisionError" in health["fallbacks"]["last_error"]
            assert service._procpool.stats.supervision_failures == 1
            # While the breaker is open, batches enter at thread directly:
            # no doomed process attempt, no further supervision failures.
            _assert_identical(service.localize_many(_clients(6)),
                              serial_fixes)
            assert service._procpool.stats.supervision_failures == 1
            # Entering at thread is not a fallback (nothing fell mid-call).
            assert service.health()["fallbacks"]["served_by"] == {"thread": 1}
            # Heal the pool, force the recovery window open: the next
            # batch half-open-probes the process rung and re-closes.
            faults.deactivate()
            service._breaker._clock = lambda: time.monotonic() + 2000.0
            assert service.health()["breaker"]["state"] == "half-open"
            _assert_identical(service.localize_many(_clients(6)),
                              serial_fixes)
            health = service.health()
            assert health["breaker"]["state"] == "closed"
            assert health["backend"]["active"] == "process"

    def test_thread_fault_degrades_to_serial(self, serial_fixes):
        faults.activate(faults.FaultSpec(kind="thread-shard-failure",
                                         times=1))
        service = _service(parallel={"backend": "thread", "num_workers": 2,
                                     "min_clients_per_worker": 2})
        with service:
            _assert_identical(service.localize_many(_clients(6)),
                              serial_fixes)
            health = service.health()
            assert health["fallbacks"]["served_by"] == {"serial": 1}
            # One failure is below the default threshold: still closed.
            assert health["breaker"]["state"] == "closed"
            # Budget spent: the thread rung serves the next batch itself.
            _assert_identical(service.localize_many(_clients(6)),
                              serial_fixes)
            assert service.health()["fallbacks"]["served_by"] == {"serial": 1}

    def test_shm_allocation_failure_degrades_to_thread(self, serial_fixes):
        faults.activate(faults.FaultSpec(kind="shm-allocation-failure",
                                         times=1))
        with _process_service() as service:
            _assert_identical(service.localize_many(_clients(6)),
                              serial_fixes)
            assert service.health()["fallbacks"]["served_by"] == {"thread": 1}

    def test_breaker_disabled_propagates_the_transient_error(self):
        faults.activate(faults.FaultSpec(kind="kill-worker-mid-shard"))
        service = _process_service(
            **{"resilience.max_retries": 0,
               "resilience.breaker_enabled": False})
        with service:
            with pytest.raises(PoolSupervisionError):
                service.localize_many(_clients(6))


class TestCircuitBreakerUnit:
    def _breaker(self, threshold=2, recovery_s=10.0, enabled=True):
        state = {"now": 0.0}
        breaker = CircuitBreaker(backend_ladder("process"),
                                 threshold=threshold, recovery_s=recovery_s,
                                 enabled=enabled,
                                 clock=lambda: state["now"])
        return breaker, state

    def test_ladders(self):
        assert backend_ladder("process") == ("process", "thread", "serial")
        assert backend_ladder("thread") == ("thread", "serial")
        assert backend_ladder("none") == ("serial",)

    def test_opens_after_threshold_and_probes_after_recovery(self):
        breaker, clock = self._breaker()
        assert breaker.state == "closed" and breaker.entry_index() == 0
        breaker.record_failure(0)
        assert breaker.entry_index() == 0    # below threshold
        breaker.record_failure(0)
        assert breaker.state == "open" and breaker.entry_index() == 1
        clock["now"] = 9.9
        assert breaker.entry_index() == 1    # window still open
        clock["now"] = 10.0
        assert breaker.state == "half-open"
        assert breaker.entry_index() == 0    # the probe
        breaker.record_success(0)
        assert breaker.state == "closed" and breaker.entry_index() == 0

    def test_failed_probe_reopens_the_window(self):
        breaker, clock = self._breaker()
        breaker.record_failure(0)
        breaker.record_failure(0)
        clock["now"] = 10.0
        assert breaker.entry_index() == 0
        breaker.record_failure(0)            # the probe failed
        assert breaker.state == "open" and breaker.entry_index() == 1
        clock["now"] = 19.9
        assert breaker.entry_index() == 1    # a fresh full window
        clock["now"] = 20.0
        assert breaker.entry_index() == 0

    def test_degradation_cascades_to_serial_and_recovers_stepwise(self):
        breaker, clock = self._breaker()
        breaker.record_failure(0)
        breaker.record_failure(0)            # -> thread
        breaker.record_failure(1)
        breaker.record_failure(1)            # -> serial
        assert breaker.level == 2 and breaker.entry_index() == 2
        clock["now"] = 10.0
        assert breaker.entry_index() == 1    # probe thread first
        breaker.record_success(1)
        assert breaker.level == 1            # thread restored, still open
        clock["now"] = 20.0
        assert breaker.entry_index() == 0    # then probe process
        breaker.record_success(0)
        assert breaker.level == 0 and breaker.state == "closed"

    def test_successes_on_the_degraded_rung_do_not_close(self):
        breaker, clock = self._breaker()
        breaker.record_failure(0)
        breaker.record_failure(0)
        breaker.record_success(1)
        breaker.record_success(1)
        assert breaker.state == "open" and breaker.entry_index() == 1

    def test_disabled_breaker_never_degrades(self):
        breaker, _ = self._breaker(enabled=False)
        for _ in range(5):
            breaker.record_failure(0)
        assert breaker.entry_index() == 0 and breaker.state == "closed"

    def test_snapshot_is_json_safe(self):
        import json
        breaker, _ = self._breaker()
        breaker.record_failure(0)
        snapshot = json.loads(json.dumps(breaker.snapshot()))
        assert snapshot["state"] == "closed"
        assert snapshot["ladder"] == ["process", "thread", "serial"]
        assert snapshot["failures"] == [1, 0, 0]


# ----------------------------------------------------------------------
# Backpressure and shedding (service-wide pending budget)
# ----------------------------------------------------------------------
class TestBackpressure:
    def _spectrum(self, client_id, timestamp_s):
        return _spectrum_towards(AP_POSITIONS[0], Point2D(10.0, 5.0),
                                 timestamp_s=timestamp_s,
                                 client_id=client_id)

    def test_shed_oldest_prefers_the_ingesting_client(self):
        service = _service(
            **{"resilience.max_total_pending_frames": 3,
               "session.max_pending_frames": 100})
        for index in range(3):
            service.ingest("ap0", self._spectrum("a", float(index)))
        assert service._pending_total == 3
        service.ingest("ap0", self._spectrum("a", 3.0))
        # Client a's own oldest frame (t=0) was shed to make room.
        assert service._pending_total == 3
        pending = service.session("a").pending_timestamped()["ap0"]
        assert [timestamp for timestamp, _ in pending] == [1.0, 2.0, 3.0]
        assert service.health()["ingest"]["shed_frames"] == 1

    def test_shed_oldest_falls_back_to_globally_oldest_session(self):
        service = _service(
            **{"resilience.max_total_pending_frames": 2,
               "session.max_pending_frames": 100})
        service.ingest("ap0", self._spectrum("a", 0.0))
        service.ingest("ap0", self._spectrum("b", 1.0))
        service.ingest("ap0", self._spectrum("newcomer", 2.0))
        # The newcomer had nothing to shed, so the globally oldest pending
        # frame (client a's) went instead.
        assert service.session("a").pending_frames == 0
        assert service.session("b").pending_frames == 1
        assert service.session("newcomer").pending_frames == 1
        assert service._pending_total == 2

    def test_reject_policy_raises_named_error_and_counts(self):
        service = _service(
            **{"resilience.max_total_pending_frames": 1,
               "resilience.shed_policy": "reject"})
        service.ingest("ap0", self._spectrum("a", 0.0))
        with pytest.raises(BackpressureError, match="budget is full"):
            service.ingest("ap0", self._spectrum("b", 1.0))
        # The rejected frame left no trace; the first client is intact.
        assert service._pending_total == 1
        assert service.health()["ingest"]["backpressure_rejected"] == 1

    def test_pending_total_tracks_session_drains(self):
        service = _service(**{"session.emit_every_frames": 100})
        for index in range(4):
            service.ingest("ap0", self._spectrum("a", float(index)))
        assert service._pending_total == 4
        assert service.health()["ingest"]["pending_frames"] == 4
        service.flush()
        assert service._pending_total == 0

    def test_per_session_cap_keeps_service_accounting_exact(self):
        service = _service(**{"session.max_pending_frames": 2})
        for index in range(5):
            service.ingest("ap0", self._spectrum("a", float(index)))
        assert service.session("a").pending_frames == 2
        assert service._pending_total == 2


# ----------------------------------------------------------------------
# Poison-frame rejection at the door
# ----------------------------------------------------------------------
class TestPoisonFrames:
    def _nan_spectrum(self, client_id="c0"):
        angles = default_angle_grid(1.0)
        power = np.ones_like(angles)
        power[3] = np.nan
        return AoASpectrum(angles, power, ap_position=AP_POSITIONS[0],
                           client_id=client_id, ap_id="ap0")

    def test_nan_power_rejected_with_named_error(self):
        service = _service()
        with pytest.raises(PoisonFrameError, match="'c0'.*'ap0'.*non-finite"):
            service.ingest("ap0", self._nan_spectrum())
        assert service._pending_total == 0
        assert service.health()["ingest"]["poison_rejected"] == 1

    def test_grid_mismatch_against_pending_frames_rejected(self):
        service = _service()
        good = _spectrum_towards(AP_POSITIONS[0], Point2D(10.0, 5.0),
                                 client_id="c0")
        service.ingest("ap0", good)
        angles = default_angle_grid(2.0)     # a different grid shape
        mismatched = AoASpectrum(angles, np.ones_like(angles),
                                 ap_position=AP_POSITIONS[0],
                                 client_id="c0", ap_id="ap0")
        with pytest.raises(PoisonFrameError, match="contradicts"):
            service.ingest("ap0", mismatched)
        assert service.session("c0").pending_frames == 1

    def test_ingest_many_rejects_atomically(self):
        service = _service()
        good = _spectrum_towards(AP_POSITIONS[0], Point2D(10.0, 5.0),
                                 client_id="c0")
        with pytest.raises(PoisonFrameError):
            service.ingest_many("ap0", [good, self._nan_spectrum("c1")])
        # Nothing was admitted: no session holds half the burst.
        assert service._pending_total == 0
        assert all(s.pending_frames == 0
                   for s in service.sessions.values())

    def test_raw_entry_with_nan_snapshots_rejected_before_the_frontend(self):
        service = _service()
        ap = service.build_ap("ap0", AP_POSITIONS[0])
        samples = np.full((8, 10), np.nan + 0.0j)
        entry = BufferEntry(
            snapshots=SnapshotMatrix(samples, client_id="c0"),
            client_id="c0", timestamp_s=0.0, sequence=0)
        with pytest.raises(PoisonFrameError, match="snapshot samples"):
            service.ingest(ap, entry)
        with pytest.raises(PoisonFrameError, match="snapshot samples"):
            service.ingest_many(ap, [entry])
        assert service.health()["ingest"]["poison_rejected"] == 2

    def test_rejection_can_be_disabled(self):
        service = _service(**{"resilience.reject_poison_frames": False})
        service.ingest("ap0", self._nan_spectrum())
        assert service._pending_total == 1

    def test_injected_poison_fault_is_caught_by_the_gate(self):
        # The fault plan arrives via the config knob, proving the
        # config-activation path end to end.
        plan = '[{"kind": "poison-frame", "times": 1}]'
        service = _service(**{"resilience.fault_plan": plan})
        good = _spectrum_towards(AP_POSITIONS[0], Point2D(10.0, 5.0),
                                 client_id="c0")
        with pytest.raises(PoisonFrameError, match="non-finite"):
            service.ingest("ap0", good)
        service.ingest("ap0", good)          # budget spent: admitted
        assert service._pending_total == 1


# ----------------------------------------------------------------------
# Satellite 1: the close()/_ensure() lifecycle race
# ----------------------------------------------------------------------
class _StubExecutor:
    """Stands in for ProcessPoolExecutor: records lifecycle transitions."""

    instances = []

    def __init__(self, *args, **kwargs):
        self.shutdowns = 0
        _StubExecutor.instances.append(self)

    def shutdown(self, wait=True, cancel_futures=False):
        self.shutdowns += 1


class TestPoolLifecycleRace:
    def _pool(self, monkeypatch):
        monkeypatch.setattr(_procpool, "ProcessPoolExecutor", _StubExecutor)
        _StubExecutor.instances = []
        config = ArrayTrackConfig(bounds=BOUNDS)
        return ProcessShardPool(config)

    def test_closed_pool_refuses_to_rebuild(self, monkeypatch):
        pool = self._pool(monkeypatch)
        pool._ensure()
        assert pool.started
        pool.close()
        assert not pool.started and pool.closed
        with pytest.raises(ConfigurationError, match="closed"):
            pool._ensure()
        pool.close()                         # idempotent
        assert [e.shutdowns for e in _StubExecutor.instances] == [1]

    def test_concurrent_close_and_ensure_never_leak_an_executor(
            self, monkeypatch):
        pool = self._pool(monkeypatch)
        pool._ensure()                       # at least one executor exists
        barrier = threading.Barrier(8)
        errors = []

        def ensure_loop():
            barrier.wait()
            for _ in range(200):
                try:
                    pool._ensure()
                except ConfigurationError:
                    return               # pool closed under us: expected
                except BaseException as exc:  # noqa: BLE001 - fail the test
                    errors.append(exc)
                    return

        def close_loop():
            barrier.wait()
            for _ in range(50):
                pool.close()

        threads = [threading.Thread(target=ensure_loop) for _ in range(6)] \
            + [threading.Thread(target=close_loop) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        pool.close()                         # settle any last _ensure win
        assert not pool.started and pool.closed
        assert not errors
        # Every executor ever created was shut down -- none resurrected
        # after close, none double-shutdown beyond idempotent calls, none
        # leaked without a shutdown.
        assert _StubExecutor.instances
        assert all(e.shutdowns >= 1 for e in _StubExecutor.instances)


# ----------------------------------------------------------------------
# Satellite 2: shm leak accounting
# ----------------------------------------------------------------------
class TestShmLeakAccounting:
    def test_buffer_error_on_close_is_counted_and_still_unlinked(self):
        from multiprocessing import shared_memory

        before = shm_leak_events()
        segment = shared_memory.SharedMemory(
            create=True, size=64, name=_procpool._new_segment_name())
        try:
            _procpool._LIVE_SEGMENTS.add(segment.name)
            held = segment.buf[0:8]          # an escaped exported buffer
        finally:
            _procpool._release_segment(segment)
        # The escaped buffer made close() fail: counted, not swallowed ...
        assert shm_leak_events() == before + 1
        # ... but the segment name is gone system-wide regardless.
        assert segment.name not in live_segments()
        assert glob.glob(f"/dev/shm/{segment.name}") == []
        held.release()
        segment.close()

    def test_already_unlinked_segment_is_tolerated_and_not_a_leak(self):
        from multiprocessing import shared_memory

        before = shm_leak_events()
        segment = shared_memory.SharedMemory(
            create=True, size=64, name=_procpool._new_segment_name())
        try:
            _procpool._LIVE_SEGMENTS.add(segment.name)
            segment.unlink()                 # someone else already unlinked
        finally:
            _procpool._release_segment(segment)
        assert shm_leak_events() == before
        assert segment.name not in live_segments()

    def test_leak_counter_reaches_health(self):
        with _service() as service:
            assert service.health()["pool"]["shm_leak_events"] \
                == shm_leak_events()


# ----------------------------------------------------------------------
# The health snapshot
# ----------------------------------------------------------------------
class TestHealth:
    def test_schema_and_json_safety(self):
        import json

        with _process_service() as service:
            health = json.loads(json.dumps(service.health()))
        assert set(health) == {"closed", "backend", "breaker", "pool",
                               "ingest", "fallbacks", "sessions"}
        assert health["backend"] == {"configured": "process",
                                     "active": "process"}
        assert set(health["pool"]) == {
            "started", "rebuilds", "broken_pools", "shard_timeouts",
            "shard_retries", "supervision_failures", "backoff_slept_s",
            "shm_leak_events", "live_segments"}
        assert set(health["ingest"]) == {
            "pending_frames", "pending_budget", "shed_frames",
            "backpressure_rejected", "poison_rejected"}
        assert health["pool"]["started"] is False
        assert health["sessions"] == 0

    def test_health_still_works_on_a_closed_service(self):
        service = _service()
        service.close()
        assert service.health()["closed"] is True
