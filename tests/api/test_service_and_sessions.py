"""Tests for the ArrayTrackService facade: batch API, streaming sessions, shims."""

import numpy as np
import pytest

from repro.ap import APConfig, ArrayTrackAP
from repro.api import ArrayTrackConfig, ArrayTrackService
from repro.channel import MultipathChannel
from repro.core import AoASpectrum, LocalizerConfig, default_angle_grid
from repro.errors import ConfigurationError, EstimationError
from repro.geometry import Point2D, bearing_deg
from repro.server import ArrayTrackServer, ServerConfig

BOUNDS = (0.0, 0.0, 20.0, 10.0)
TARGET = Point2D(12.0, 6.0)
AP_POSITIONS = [Point2D(1.0, 1.0), Point2D(19.0, 1.0), Point2D(10.0, 9.5)]


def _spectrum_towards(ap_position, target, width=3.0, timestamp_s=0.0,
                      extra_peak=None, client_id=""):
    angles = default_angle_grid(1.0)
    bearing = bearing_deg(ap_position, target)
    distance = np.minimum(np.abs(angles - bearing), 360 - np.abs(angles - bearing))
    power = np.exp(-0.5 * (distance / width) ** 2) + 1e-4
    if extra_peak is not None:
        extra_distance = np.minimum(np.abs(angles - extra_peak),
                                    360 - np.abs(angles - extra_peak))
        power += 0.9 * np.exp(-0.5 * (extra_distance / width) ** 2)
    return AoASpectrum(angles, power, ap_position=ap_position,
                       ap_id=f"ap@{ap_position.x:.0f},{ap_position.y:.0f}",
                       client_id=client_id, timestamp_s=timestamp_s)


def _service(**overrides):
    config = ArrayTrackConfig(bounds=BOUNDS).updated(
        {"server.localizer.grid_resolution_m": 0.2, **overrides})
    return ArrayTrackService(config)


def _spectra_for(target, timestamp_s=0.0):
    return {f"ap{i}": [_spectrum_towards(p, target, timestamp_s=timestamp_s)]
            for i, p in enumerate(AP_POSITIONS)}


class TestBatchFacade:
    def test_localize_finds_target(self):
        service = _service()
        estimate = service.localize(_spectra_for(TARGET), "c")
        assert estimate.position.distance_to(TARGET) < 0.3
        assert estimate.client_id == "c"

    def test_localize_many_matches_single(self):
        service = _service()
        rng = np.random.default_rng(3)
        clients = {f"c{i}": _spectra_for(Point2D(rng.uniform(2, 18),
                                                 rng.uniform(2, 8)))
                   for i in range(4)}
        batched = service.localize_many(clients)
        for client_id, spectra in clients.items():
            single = service.localize(spectra, client_id)
            assert batched[client_id].position == single.position
            assert batched[client_id].likelihood == single.likelihood

    def test_service_requires_bounds(self):
        with pytest.raises(ConfigurationError, match="bounds"):
            ArrayTrackService(ArrayTrackConfig())

    def test_bounds_argument_overrides_config(self):
        service = ArrayTrackService(ArrayTrackConfig(), bounds=BOUNDS)
        assert service.bounds == BOUNDS

    def test_from_json_constructor(self):
        config = ArrayTrackConfig(bounds=BOUNDS)
        service = ArrayTrackService.from_json(config.to_json())
        assert service.config == config

    def test_localize_buffered_uses_built_fleet(self):
        service = _service()
        rng = np.random.default_rng(5)
        for index, position in enumerate(AP_POSITIONS):
            ap = service.build_ap(f"ap{index}", position,
                                  rng=np.random.default_rng(index))
            channel = MultipathChannel.from_bearings(
                [float(rng.uniform(30, 150))], [1.0], direct_index=0,
                client_id="buffered", ap_id=ap.ap_id)
            ap.overhear(channel, timestamp_s=0.0)
        fixes = service.localize_buffered(["buffered"])
        assert set(fixes) == {"buffered"}
        assert fixes["buffered"].num_aps == 3


class TestDeprecatedShims:
    def test_server_localize_spectra_warns_and_matches_facade(self):
        spectra = _spectra_for(TARGET)
        service = _service()
        facade = service.localize(spectra, "c")
        server = ArrayTrackServer(
            BOUNDS, ServerConfig(localizer=LocalizerConfig(
                grid_resolution_m=0.2, spectrum_floor=0.05)))
        with pytest.deprecated_call():
            legacy = server.localize_spectra(spectra, "c")  # repro-lint: disable=RPR008 -- regression coverage for the deprecated shim until its removal
        assert legacy.position == facade.position
        assert legacy.likelihood == facade.likelihood
        assert legacy.num_aps == facade.num_aps

    def test_quickstart_shim_warns_and_matches_facade(self):
        from repro import quickstart  # repro-lint: disable=RPR008 -- regression coverage for the deprecated shim until its removal
        from repro.testbed import (ScenarioConfig, SimulatedDeployment,
                                   build_office_testbed)

        with pytest.deprecated_call():
            estimate, truth = quickstart.localize_one_client(
                num_aps=3, grid_resolution_m=0.5)

        testbed = build_office_testbed()
        deployment = SimulatedDeployment(testbed, ScenarioConfig(seed=7))
        service = ArrayTrackService(
            ArrayTrackConfig(bounds=testbed.bounds).updated(
                {"server.localizer.grid_resolution_m": 0.5}))
        spectra = deployment.collect_client_spectra(
            "client-17", testbed.ap_ids()[:3])
        expected = service.localize(spectra, "client-17")
        assert estimate.position == expected.position
        assert estimate.likelihood == expected.likelihood
        assert truth == testbed.client_position("client-17")


class TestStreamingSessions:
    def test_tick_matches_batch_bit_for_bit(self):
        streaming = _service(**{"session.emit_every_frames": 3})
        batch = _service()
        rng = np.random.default_rng(7)
        clients = {}
        for index in range(3):
            target = Point2D(rng.uniform(2, 18), rng.uniform(2, 8))
            clients[f"c{index}"] = _spectra_for(target)
        for client_id, spectra_by_ap in clients.items():
            for ap_id, spectra in spectra_by_ap.items():
                for spectrum in spectra:
                    streaming.ingest(ap_id, spectrum, client_id=client_id,
                                     timestamp_s=0.0)
        fixes = streaming.tick()
        expected = batch.localize_many(clients)
        assert set(fixes) == set(clients)
        for client_id in clients:
            assert fixes[client_id].position == expected[client_id].position
            assert fixes[client_id].likelihood == expected[client_id].likelihood

    def test_streaming_runs_multipath_suppression_like_batch(self):
        """Multi-frame-per-AP sessions suppress exactly like the batch path."""
        spectra = {
            "ap0": [
                _spectrum_towards(AP_POSITIONS[0], TARGET, timestamp_s=0.0,
                                  extra_peak=200.0),
                _spectrum_towards(AP_POSITIONS[0], TARGET, timestamp_s=0.03),
            ],
            "ap1": [_spectrum_towards(AP_POSITIONS[1], TARGET, timestamp_s=0.0)],
            "ap2": [_spectrum_towards(AP_POSITIONS[2], TARGET, timestamp_s=0.0)],
        }
        streaming = _service(**{"session.emit_every_frames": 4})
        for ap_id, ap_spectra in spectra.items():
            for spectrum in ap_spectra:
                streaming.ingest(ap_id, spectrum, client_id="c0",
                                 timestamp_s=spectrum.timestamp_s)
        fixes = streaming.tick()
        expected = _service().localize(spectra, "c0")
        assert fixes["c0"].position == expected.position
        assert fixes["c0"].position.distance_to(TARGET) < 0.3

    def test_frame_count_trigger(self):
        service = _service(**{"session.emit_every_frames": 3})
        for index in range(2):
            service.ingest(f"ap{index}",
                           _spectrum_towards(AP_POSITIONS[index], TARGET),
                           client_id="c", timestamp_s=0.0)
        assert service.tick() == {}
        assert not service.session("c").ready()
        service.ingest("ap2", _spectrum_towards(AP_POSITIONS[2], TARGET),
                       client_id="c", timestamp_s=0.0)
        assert service.session("c").ready()
        fixes = service.tick()
        assert set(fixes) == {"c"}
        assert service.session("c").pending_frames == 0

    def test_max_age_trigger_with_explicit_now(self):
        service = _service(**{"session.emit_every_frames": 0,
                              "session.max_age_s": 1.0})
        service.ingest("ap0", _spectrum_towards(AP_POSITIONS[0], TARGET),
                       client_id="c", timestamp_s=0.0)
        assert service.tick(now_s=0.5) == {}
        fixes = service.tick(now_s=1.2)
        assert set(fixes) == {"c"}

    def test_max_age_trigger_uses_last_ingest_when_now_omitted(self):
        service = _service(**{"session.emit_every_frames": 0,
                              "session.max_age_s": 1.0})
        service.ingest("ap0", _spectrum_towards(AP_POSITIONS[0], TARGET),
                       client_id="c", timestamp_s=0.0)
        assert service.tick() == {}
        service.ingest("ap1", _spectrum_towards(AP_POSITIONS[1], TARGET),
                       client_id="c", timestamp_s=1.5)
        fixes = service.tick()
        assert set(fixes) == {"c"}

    def test_flush_drains_without_triggers(self):
        service = _service(**{"session.emit_every_frames": 100})
        service.ingest("ap0", _spectrum_towards(AP_POSITIONS[0], TARGET),
                       client_id="c", timestamp_s=0.0)
        assert service.tick() == {}
        fixes = service.flush()
        assert set(fixes) == {"c"}
        assert service.flush() == {}

    def test_pending_cap_drops_oldest_frame(self):
        service = _service(**{"session.emit_every_frames": 0,
                              "session.max_pending_frames": 2})
        session = None
        for index in range(3):
            session = service.ingest(
                "ap0",
                _spectrum_towards(AP_POSITIONS[0], TARGET,
                                  timestamp_s=float(index)),
                client_id="c", timestamp_s=float(index))
        assert session.pending_frames == 2
        assert session.oldest_pending_s == 1.0

    def test_pending_cap_uses_ingest_timestamps_not_spectrum_ones(self):
        """Cap eviction must track the ingest-resolved times, so the max-age
        trigger stays sane when spectra carry the default timestamp 0.0."""
        service = _service(**{"session.emit_every_frames": 0,
                              "session.max_age_s": 10.0,
                              "session.max_pending_frames": 2})
        session = None
        for step in range(3):
            # Spectra keep their default timestamp_s=0.0; real times are
            # supplied via ingest(..., timestamp_s=...).
            session = service.ingest(
                "ap0", _spectrum_towards(AP_POSITIONS[0], TARGET),
                client_id="c", timestamp_s=100.0 + step)
        assert session.pending_frames == 2
        assert session.oldest_pending_s == 101.0
        # Frames are ~1 s old, far below max_age_s: no fix yet.
        assert not session.ready(102.0)
        assert session.ready(111.5)

    def test_pending_cap_drops_globally_oldest_under_reordering(self):
        """Out-of-order arrival within one AP must not shield old frames."""
        service = _service(**{"session.emit_every_frames": 0,
                              "session.max_pending_frames": 2})
        for timestamp, ap_index in ((5.0, 0), (1.0, 0), (3.0, 1)):
            session = service.ingest(
                f"ap{ap_index}",
                _spectrum_towards(AP_POSITIONS[ap_index], TARGET,
                                  timestamp_s=timestamp),
                client_id="c", timestamp_s=timestamp)
        assert session.pending_frames == 2
        # The ts=1.0 frame (globally oldest, but not its AP list's head)
        # was evicted; 3.0 and 5.0 remain.
        assert session.oldest_pending_s == 3.0
        assert sorted(session.pending_aps) == ["ap0", "ap1"]

    def test_fixes_recorded_in_session_and_tracker(self):
        service = _service(**{"session.emit_every_frames": 1})
        for step in range(3):
            service.ingest("ap0",
                           _spectrum_towards(AP_POSITIONS[0], TARGET,
                                             timestamp_s=float(step)),
                           client_id="c", timestamp_s=float(step))
            service.tick()
        session = service.session("c")
        assert len(session.fixes) == 3
        assert session.last_fix is session.fixes[-1]
        assert len(service.tracker.track("c")) == 3
        assert service.tracker.latest("c").timestamp_s == 2.0

    def test_client_id_from_spectrum(self):
        service = _service()
        spectrum = _spectrum_towards(AP_POSITIONS[0], TARGET, client_id="tagged")
        session = service.ingest(None, spectrum)
        assert session.client_id == "tagged"
        assert session.pending_aps == [spectrum.ap_id]


class TestStreamingSuppression:
    GHOST = 200.0

    def _burst(self, ap_index, t0, ghost=None):
        """Two frames 30 ms apart; the first optionally carries a ghost peak."""
        return [
            _spectrum_towards(AP_POSITIONS[ap_index], TARGET, timestamp_s=t0,
                              extra_peak=ghost),
            _spectrum_towards(AP_POSITIONS[ap_index], TARGET,
                              timestamp_s=t0 + 0.03),
        ]

    def _ingest_all(self, service, spectra_by_ap, client_id="c"):
        for ap_id, frames in spectra_by_ap.items():
            for spectrum in frames:
                service.ingest(ap_id, spectrum, client_id=client_id,
                               timestamp_s=spectrum.timestamp_s)

    def test_disabled_stage_is_bit_identical_to_batch_path(self):
        """Off by default: even ghost-bearing bursts the stage would rewrite
        drain exactly like localize_many on the same pending frames."""
        spectra = {
            "ap0": self._burst(0, 0.0, ghost=self.GHOST),
            "ap1": [_spectrum_towards(AP_POSITIONS[1], TARGET)],
            "ap2": [_spectrum_towards(AP_POSITIONS[2], TARGET)],
        }
        streaming = _service(**{"session.emit_every_frames": 4})
        assert streaming.config.session.suppress_multipath is False
        self._ingest_all(streaming, spectra)
        fixes = streaming.tick()
        expected = _service().localize_many({"c": spectra})
        assert fixes["c"].position == expected["c"].position
        assert fixes["c"].likelihood == expected["c"].likelihood

    def test_enabled_stage_suppresses_ghost_and_finds_target(self):
        streaming = _service(**{"session.emit_every_frames": 4,
                                "session.suppress_multipath": True})
        spectra = {
            "ap0": self._burst(0, 0.0, ghost=self.GHOST),
            "ap1": [_spectrum_towards(AP_POSITIONS[1], TARGET)],
            "ap2": [_spectrum_towards(AP_POSITIONS[2], TARGET)],
        }
        self._ingest_all(streaming, spectra)
        fixes = streaming.tick()
        assert fixes["c"].position.distance_to(TARGET) < 0.3
        # The ghost lobe was attenuated before synthesis: folding the raw
        # frames instead gives a different likelihood product.
        raw = _service().server.synthesize_batch(
            {"c": [s for frames in spectra.values() for s in frames]})
        assert fixes["c"].likelihood != raw["c"].likelihood

    def test_enabled_stage_feeds_one_primary_per_burst(self):
        """Two bursts 1 s apart contribute one suppressed primary each,
        unlike the batch path which only folds the first time group."""
        spectra = {
            "ap0": self._burst(0, 0.0, ghost=self.GHOST)
            + self._burst(0, 1.0),
            "ap1": [_spectrum_towards(AP_POSITIONS[1], TARGET)],
            "ap2": [_spectrum_towards(AP_POSITIONS[2], TARGET)],
        }
        streaming = _service(**{"session.emit_every_frames": 6,
                                "session.suppress_multipath": True})
        self._ingest_all(streaming, spectra)
        fixes = streaming.tick()
        reference = _service()
        suppressor = reference.config.suppressor
        processed = [out for frames in spectra.values()
                     for out in suppressor.process(frames)]
        assert len(processed) == 4  # 2 bursts for ap0, 1 spectrum each other
        expected = reference.server.synthesize_batch({"c": processed})
        assert fixes["c"].position == expected["c"].position
        assert fixes["c"].likelihood == expected["c"].likelihood

    def test_enabled_stage_groups_on_ingest_timestamps(self):
        """Frames carrying the default timestamp 0.0 but ingested 5 s apart
        form singleton groups: nothing may be suppressed."""
        ghost_frame = _spectrum_towards(AP_POSITIONS[0], TARGET,
                                        extra_peak=self.GHOST)
        clean_frame = _spectrum_towards(AP_POSITIONS[0], TARGET)
        others = {f"ap{i}": _spectrum_towards(AP_POSITIONS[i], TARGET)
                  for i in (1, 2)}
        streaming = _service(**{"session.emit_every_frames": 4,
                                "session.suppress_multipath": True})
        streaming.ingest("ap0", ghost_frame, client_id="c", timestamp_s=0.0)
        streaming.ingest("ap0", clean_frame, client_id="c", timestamp_s=5.0)
        for ap_id, spectrum in others.items():
            streaming.ingest(ap_id, spectrum, client_id="c", timestamp_s=5.0)
        fixes = streaming.tick()
        expected = _service().server.synthesize_batch(
            {"c": [ghost_frame, clean_frame, *others.values()]})
        assert fixes["c"].position == expected["c"].position
        assert fixes["c"].likelihood == expected["c"].likelihood

    def test_suppressor_section_parameterizes_the_stage(self):
        """A zero-size window turns every frame into a singleton group."""
        spectra = {
            "ap0": self._burst(0, 0.0, ghost=self.GHOST),
            "ap1": [_spectrum_towards(AP_POSITIONS[1], TARGET)],
            "ap2": [_spectrum_towards(AP_POSITIONS[2], TARGET)],
        }
        streaming = _service(**{"session.emit_every_frames": 4,
                                "session.suppress_multipath": True,
                                "suppressor.window_s": 0.0})
        self._ingest_all(streaming, spectra)
        fixes = streaming.tick()
        expected = _service().server.synthesize_batch(
            {"c": [s for frames in spectra.values() for s in frames]})
        assert fixes["c"].position == expected["c"].position
        assert fixes["c"].likelihood == expected["c"].likelihood


class TestClientTrackAccess:
    def test_track_and_latest_fix_accessors(self):
        service = _service(**{"session.emit_every_frames": 1,
                              "tracker.smoothing_factor": 1.0})
        for step in range(3):
            service.ingest("ap0",
                           _spectrum_towards(AP_POSITIONS[0], TARGET,
                                             timestamp_s=float(step)),
                           client_id="c", timestamp_s=float(step))
            service.tick()
        track = service.track("c")
        assert len(track) == 3
        assert [point.timestamp_s for point in track] == [0.0, 1.0, 2.0]
        assert service.latest_fix("c") == track[-1]
        assert service.latest_fix("missing") is None
        assert service.track("missing") == []

    def test_tracker_section_configures_service_tracker(self):
        service = _service(**{"tracker.smoothing_factor": 0.25,
                              "tracker.max_history": 2,
                              "tracker.on_out_of_order": "reject"})
        assert service.tracker.smoothing_factor == 0.25
        assert service.tracker.max_history == 2
        assert service.tracker.on_out_of_order == "reject"

    def test_reject_policy_keeps_session_frames_on_stale_tick(self):
        service = _service(**{"session.emit_every_frames": 1,
                              "tracker.on_out_of_order": "reject"})
        service.ingest("ap0", _spectrum_towards(AP_POSITIONS[0], TARGET),
                       client_id="c", timestamp_s=0.0)
        service.tick(now_s=10.0)
        service.ingest("ap0", _spectrum_towards(AP_POSITIONS[0], TARGET),
                       client_id="c", timestamp_s=1.0)
        with pytest.raises(EstimationError, match="out-of-order"):
            service.tick(now_s=5.0)
        # The rejected fix left the pending frame in place: a tick at a
        # sane time emits it.
        assert service.session("c").pending_frames == 1
        fixes = service.tick(now_s=11.0)
        assert set(fixes) == {"c"}
        assert len(service.track("c")) == 2

    def test_reject_policy_is_atomic_across_clients(self):
        """One stale client must not let other drained clients lose fixes."""
        service = _service(**{"session.emit_every_frames": 1,
                              "tracker.on_out_of_order": "reject"})
        # "good" is created first, so without the up-front validation it
        # would be committed (and its frames drained) before "bad" raises.
        service.ingest("ap0", _spectrum_towards(AP_POSITIONS[0], TARGET),
                       client_id="good", timestamp_s=0.0)
        service.ingest("ap1", _spectrum_towards(AP_POSITIONS[1], TARGET),
                       client_id="bad", timestamp_s=0.0)
        service.tick(now_s=10.0)
        # Advance only "bad" to t=50 ("good" has nothing pending then).
        service.ingest("ap1", _spectrum_towards(AP_POSITIONS[1], TARGET),
                       client_id="bad", timestamp_s=50.0)
        service.tick(now_s=50.0)
        # A tick at t=20 is fine for "good" (latest 10) but stale for
        # "bad" (latest 50).
        service.ingest("ap0", _spectrum_towards(AP_POSITIONS[0], TARGET),
                       client_id="good", timestamp_s=20.0)
        service.ingest("ap1", _spectrum_towards(AP_POSITIONS[1], TARGET),
                       client_id="bad", timestamp_s=20.0)
        with pytest.raises(EstimationError, match="'bad'"):
            service.tick(now_s=20.0)
        # Nothing was committed for ANY client: frames intact, tracks and
        # fix logs unchanged ("good" would have been drained first).
        assert service.session("good").pending_frames == 1
        assert service.session("bad").pending_frames == 1
        assert len(service.track("good")) == 1
        assert len(service.session("good").fixes) == 1


class TestIngestValidation:
    def test_missing_client_id_rejected(self):
        service = _service()
        with pytest.raises(ConfigurationError, match="client id"):
            service.ingest("ap0", _spectrum_towards(AP_POSITIONS[0], TARGET))

    def test_missing_ap_id_rejected(self):
        service = _service()
        angles = default_angle_grid(1.0)
        anonymous = AoASpectrum(angles, np.ones_like(angles),
                                ap_position=AP_POSITIONS[0])
        with pytest.raises(ConfigurationError, match="AP id"):
            service.ingest(None, anonymous, client_id="c")

    def test_unsupported_payload_rejected(self):
        service = _service()
        with pytest.raises(ConfigurationError, match="cannot ingest"):
            service.ingest("ap0", object(), client_id="c")

    def test_empty_client_id_session_rejected(self):
        with pytest.raises(ConfigurationError):
            _service().session("")

    def test_buffer_entry_needs_known_ap(self):
        service = _service()
        ap = ArrayTrackAP("probe", Point2D(0.0, 0.0),
                          config=APConfig(num_antennas=4,
                                          use_symmetry_antenna=False,
                                          apply_phase_offsets=False),
                          rng=np.random.default_rng(1))
        channel = MultipathChannel.from_bearings(
            [60.0], [1.0], direct_index=0, client_id="c9", ap_id="probe")
        entry = ap.overhear(channel, timestamp_s=0.5)
        with pytest.raises(ConfigurationError, match="BufferEntry"):
            service.ingest("probe", entry)
        service.adopt_aps([ap])
        session = service.ingest("probe", entry)
        assert session.client_id == "c9"
        assert session.pending_frames == 1
        assert session.last_ingest_s == 0.5

    def test_empty_tick_batch_never_reaches_engine(self):
        service = _service()
        assert service.tick() == {}
        assert service.flush() == {}
        with pytest.raises(EstimationError):
            service.localize_many({})

    def test_failed_tick_preserves_all_pending_frames(self):
        """One poisoned client must not destroy any session's frames."""
        service = _service(**{"session.emit_every_frames": 1})
        service.ingest("ap0", _spectrum_towards(AP_POSITIONS[0], TARGET),
                       client_id="good", timestamp_s=0.0)
        angles = default_angle_grid(1.0)
        poisoned = AoASpectrum(angles, np.ones_like(angles), ap_id="ap9")
        service.ingest("ap9", poisoned, client_id="bad", timestamp_s=0.0)
        with pytest.raises(EstimationError, match="AP position"):
            service.tick()
        # Nothing was drained and no fix recorded.
        assert service.session("good").pending_frames == 1
        assert service.session("bad").pending_frames == 1
        assert service.session("good").fixes == []
        # Discarding the poisoned session lets the good one proceed.
        service.session("bad").drain()
        fixes = service.tick()
        assert set(fixes) == {"good"}


class TestIngestMany:
    def _probe_ap(self, seed=1):
        return ArrayTrackAP("probe", Point2D(1.0, 1.0),
                            config=APConfig(num_antennas=8,
                                            use_symmetry_antenna=True,
                                            apply_phase_offsets=False),
                            rng=np.random.default_rng(seed))

    def _burst(self, ap, num_frames, client_id, rng):
        channel = MultipathChannel.from_bearings(
            [60.0, 130.0], [1.0, 0.5 * np.exp(0.4j)],
            direct_index=0, client_id=client_id, ap_id=ap.ap_id)
        return [ap.overhear(channel, timestamp_s=0.03 * index, rng=rng)
                for index in range(num_frames)]

    def test_batched_ingest_matches_serial_ingest_bitwise(self):
        ap = self._probe_ap()
        entries = self._burst(ap, 4, "c1", np.random.default_rng(2))
        serial = _service()
        serial.adopt_aps([ap])
        for entry in entries:
            serial.ingest("probe", entry)
        batched = _service()
        batched.adopt_aps([ap])
        sessions = batched.ingest_many("probe", entries)
        assert len(sessions) == 4
        assert all(session is sessions[0] for session in sessions)
        reference = serial.session("c1").pending_spectra()
        candidate = batched.session("c1").pending_spectra()
        assert list(reference) == list(candidate)
        for reference_list, candidate_list in zip(reference.values(),
                                                  candidate.values(),
                                                  strict=True):
            for expected, actual in zip(reference_list, candidate_list,
                                        strict=True):
                assert np.array_equal(expected.power, actual.power)

    def test_mixed_spectra_and_entries_keep_input_order(self):
        ap = self._probe_ap()
        entries = self._burst(ap, 2, "c2", np.random.default_rng(5))
        spectrum = _spectrum_towards(AP_POSITIONS[0], TARGET,
                                     timestamp_s=0.5, client_id="c2")
        service = _service()
        service.adopt_aps([ap])
        sessions = service.ingest_many(
            ap, [entries[0], spectrum, entries[1]])
        assert len(sessions) == 3
        session = service.session("c2")
        assert session.pending_frames == 3
        pending = session.pending_timestamped()["probe"]
        assert [timestamp for timestamp, _ in pending] == [0.0, 0.5, 0.03]

    def test_raw_entries_need_known_ap(self):
        ap = self._probe_ap()
        entries = self._burst(ap, 2, "c3", np.random.default_rng(7))
        service = _service()
        with pytest.raises(ConfigurationError, match="BufferEntries"):
            service.ingest_many("probe", entries)
        assert service.ingest_many("probe", []) == []


class TestCuratedExports:
    def test_one_line_import(self):
        from repro import ArrayTrackConfig as Config
        from repro import ArrayTrackService as Service

        assert Service is ArrayTrackService
        assert Config is ArrayTrackConfig

    def test_all_names_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_version_exposed(self):
        import repro

        assert repro.__version__
        assert "ArrayTrackService" in dir(repro)
