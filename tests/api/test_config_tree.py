"""Tests for the ArrayTrackConfig tree: round-tripping, validation, overrides."""

import pytest

from repro.api import (ArrayTrackConfig, ResilienceConfig, SessionConfig,
                       TrackerConfig, default_server_config)
from repro.constants import DEFAULT_SPECTRUM_FLOOR
from repro.core import LocalizerConfig, SpectrumConfig, SuppressorConfig
from repro.errors import ConfigurationError
from repro.server import ServerConfig


class TestRoundTrip:
    def test_dict_round_trip_is_equal(self):
        config = ArrayTrackConfig(bounds=(0.0, 0.0, 20.0, 10.0))
        assert ArrayTrackConfig.from_dict(config.to_dict()) == config

    def test_dict_round_trip_with_non_default_values(self):
        config = ArrayTrackConfig(
            bounds=(1.0, 2.0, 30.0, 18.0),
            estimator="capon",
            server=ServerConfig(
                localizer=LocalizerConfig(grid_resolution_m=0.5,
                                          spectrum_floor=0.1),
                enable_multipath_suppression=False,
                suppressor=SuppressorConfig(tolerance_deg=7.0)),
            session=SessionConfig(emit_every_frames=5, max_age_s=0.25),
        )
        restored = ArrayTrackConfig.from_dict(config.to_dict())
        assert restored == config
        assert restored.server.suppressor.tolerance_deg == 7.0

    def test_json_round_trip(self):
        config = ArrayTrackConfig(bounds=(0.0, 0.0, 8.0, 4.0),
                                  estimator="bartlett")
        assert ArrayTrackConfig.from_json(config.to_json()) == config

    def test_file_round_trip(self, tmp_path):
        config = ArrayTrackConfig(bounds=(0.0, 0.0, 8.0, 4.0))
        path = str(tmp_path / "service.json")
        config.to_file(path)
        assert ArrayTrackConfig.from_file(path) == config

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ConfigurationError):
            ArrayTrackConfig.from_file(str(tmp_path / "absent.json"))

    def test_bounds_list_normalized_to_tuple(self):
        config = ArrayTrackConfig.from_dict({"bounds": [0, 0, 5, 5]})
        assert config.bounds == (0.0, 0.0, 5.0, 5.0)


class TestDefaults:
    def test_service_spectrum_floor_is_documented_default(self):
        config = ArrayTrackConfig()
        assert config.server.localizer.spectrum_floor == DEFAULT_SPECTRUM_FLOOR
        assert DEFAULT_SPECTRUM_FLOOR == pytest.approx(0.05)

    def test_plain_localizer_default_unchanged(self):
        # The paper-faithful Equation 8 default stays put; only the
        # service tree applies the end-to-end 0.05 floor.
        assert LocalizerConfig().spectrum_floor == pytest.approx(0.02)

    def test_partial_server_section_keeps_facade_floor(self):
        config = ArrayTrackConfig.from_dict({"server": {}})
        assert config.server.localizer.spectrum_floor == DEFAULT_SPECTRUM_FLOOR
        assert config.server == default_server_config()

    def test_partial_localizer_section_keeps_other_defaults(self):
        config = ArrayTrackConfig.from_dict(
            {"server": {"localizer": {"grid_resolution_m": 0.5}}})
        assert config.server.localizer.grid_resolution_m == 0.5
        assert config.server.localizer.num_seeds == 3
        # A hand-written partial localizer dict must keep the facade's
        # documented floor, exactly like updated() with the same override.
        assert config.server.localizer.spectrum_floor == DEFAULT_SPECTRUM_FLOOR
        assert config == ArrayTrackConfig().updated(
            {"server.localizer.grid_resolution_m": 0.5})

    def test_explicit_floor_wins_over_facade_default(self):
        config = ArrayTrackConfig.from_dict(
            {"server": {"localizer": {"spectrum_floor": 0.02}}})
        assert config.server.localizer.spectrum_floor == 0.02


class TestRejection:
    def test_unknown_top_level_key(self):
        with pytest.raises(ConfigurationError, match="bogus"):
            ArrayTrackConfig.from_dict({"bogus": 1})

    def test_unknown_nested_key_names_path(self):
        with pytest.raises(ConfigurationError,
                           match=r"config\.server\.localizer"):
            ArrayTrackConfig.from_dict(
                {"server": {"localizer": {"grid_res": 0.1}}})

    def test_unknown_ap_spectrum_key(self):
        with pytest.raises(ConfigurationError, match=r"config\.ap\.spectrum"):
            ArrayTrackConfig.from_dict({"ap": {"spectrum": {"mode": "music"}}})

    def test_invalid_value_wrapped_with_path(self):
        with pytest.raises(ConfigurationError,
                           match="grid_resolution_m must be positive"):
            ArrayTrackConfig.from_dict(
                {"server": {"localizer": {"grid_resolution_m": -1.0}}})

    def test_invalid_tracker_value_names_path(self):
        with pytest.raises(ConfigurationError, match="smoothing_factor"):
            ArrayTrackConfig.from_dict({"tracker": {"smoothing_factor": 0.0}})

    def test_invalid_suppressor_value_fails_at_config_load(self):
        # A bad peak floor must fail here, not as an EstimationError from
        # find_peaks once a stream is already running.
        with pytest.raises(ConfigurationError, match="min_relative_height"):
            ArrayTrackConfig.from_dict(
                {"suppressor": {"min_relative_height": 1.5}})

    def test_invalid_session_value(self):
        with pytest.raises(ConfigurationError, match="suppress_multipath"):
            ArrayTrackConfig.from_dict(
                {"session": {"suppress_multipath": "yes"}})

    def test_section_must_be_mapping(self):
        with pytest.raises(ConfigurationError, match="must be a mapping"):
            ArrayTrackConfig.from_dict({"server": 3})

    def test_degenerate_bounds(self):
        with pytest.raises(ConfigurationError, match="bounds"):
            ArrayTrackConfig(bounds=(5.0, 0.0, 1.0, 10.0))
        with pytest.raises(ConfigurationError, match="bounds"):
            ArrayTrackConfig(bounds=(0.0, 0.0, 1.0))

    def test_empty_estimator_name(self):
        with pytest.raises(ConfigurationError, match="estimator"):
            ArrayTrackConfig(estimator="")

    def test_non_mapping_config(self):
        with pytest.raises(ConfigurationError):
            ArrayTrackConfig.from_dict([1, 2, 3])


class TestOverrides:
    def test_dotted_path_overrides(self):
        config = ArrayTrackConfig(bounds=(0.0, 0.0, 5.0, 5.0))
        updated = config.updated({
            "server.localizer.grid_resolution_m": 0.4,
            "ap.spectrum.method": "capon",
            "session.emit_every_frames": 1,
        })
        assert updated.server.localizer.grid_resolution_m == 0.4
        assert updated.ap.spectrum.method == "capon"
        assert updated.session.emit_every_frames == 1
        # The original is untouched.
        assert config.ap.spectrum.method == "music"

    def test_unknown_dotted_path_rejected(self):
        config = ArrayTrackConfig()
        with pytest.raises(ConfigurationError, match="unknown configuration path"):
            config.updated({"server.localizer.grid_res": 0.4})
        with pytest.raises(ConfigurationError, match="unknown configuration path"):
            config.updated({"nonsense.key": 1})

    def test_env_overrides(self):
        config = ArrayTrackConfig(bounds=(0.0, 0.0, 5.0, 5.0))
        updated = config.with_env_overrides({
            "ARRAYTRACK_ESTIMATOR": "bartlett",
            "ARRAYTRACK_SERVER__LOCALIZER__SPECTRUM_FLOOR": "0.1",
            "ARRAYTRACK_SESSION__MAX_AGE_S": "0.5",
            "UNRELATED_VARIABLE": "ignored",
        })
        assert updated.estimator == "bartlett"
        assert updated.server.localizer.spectrum_floor == 0.1
        assert updated.session.max_age_s == 0.5

    def test_env_overrides_noop_without_matches(self):
        config = ArrayTrackConfig(bounds=(0.0, 0.0, 5.0, 5.0))
        assert config.with_env_overrides({"HOME": "/root"}) is config

    def test_env_overrides_ignore_unrelated_arraytrack_variables(self):
        # Deployment variables sharing the prefix but not naming a config
        # section must not crash startup.
        config = ArrayTrackConfig(bounds=(0.0, 0.0, 5.0, 5.0))
        updated = config.with_env_overrides({
            "ARRAYTRACK_HOME": "/opt/arraytrack",
            "ARRAYTRACK_LOG_LEVEL": "debug",
            "ARRAYTRACK_ESTIMATOR": "capon",
        })
        assert updated.estimator == "capon"

    def test_env_override_typo_inside_section_still_rejected(self):
        config = ArrayTrackConfig()
        with pytest.raises(ConfigurationError, match="unknown configuration path"):
            config.with_env_overrides(
                {"ARRAYTRACK_SERVER__LOCALISER__SPECTRUM_FLOOR": "0.1"})

    def test_env_override_bad_value_rejected(self):
        config = ArrayTrackConfig()
        with pytest.raises(ConfigurationError):
            config.with_env_overrides(
                {"ARRAYTRACK_SERVER__LOCALIZER__NUM_SEEDS": "0"})


class TestSessionConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"emit_every_frames": -1},
        {"max_age_s": -0.5},
        {"max_pending_frames": 0},
        {"suppress_multipath": 1},
    ])
    def test_invalid_session_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            SessionConfig(**kwargs)


class TestTrackerSection:
    def test_defaults(self):
        config = ArrayTrackConfig()
        assert config.tracker == TrackerConfig()
        assert config.tracker.on_out_of_order == "insert"

    def test_round_trips_with_non_default_values(self):
        config = ArrayTrackConfig(
            bounds=(0.0, 0.0, 5.0, 5.0),
            tracker=TrackerConfig(smoothing_factor=0.3, max_history=16,
                                  on_out_of_order="reject"))
        restored = ArrayTrackConfig.from_dict(config.to_dict())
        assert restored == config
        assert restored.tracker.max_history == 16

    @pytest.mark.parametrize("kwargs", [
        {"smoothing_factor": 0.0},
        {"smoothing_factor": 1.5},
        {"max_history": 0},
        {"on_out_of_order": "panic"},
    ])
    def test_invalid_tracker_parameters(self, kwargs):
        with pytest.raises(ConfigurationError):
            TrackerConfig(**kwargs)

    def test_env_override_reaches_tracker_section(self):
        config = ArrayTrackConfig(bounds=(0.0, 0.0, 5.0, 5.0))
        updated = config.with_env_overrides({
            "ARRAYTRACK_TRACKER__SMOOTHING_FACTOR": "0.25",
            "ARRAYTRACK_SESSION__SUPPRESS_MULTIPATH": "true",
            "ARRAYTRACK_SUPPRESSOR__TOLERANCE_DEG": "7.5",
        })
        assert updated.tracker.smoothing_factor == 0.25
        assert updated.session.suppress_multipath is True
        assert updated.suppressor.tolerance_deg == 7.5


class TestResilienceSection:
    def test_defaults(self):
        config = ArrayTrackConfig()
        assert config.resilience == ResilienceConfig()
        assert config.resilience.supervise_pool is True
        assert config.resilience.breaker_enabled is True
        assert config.resilience.max_total_pending_frames is None
        assert config.resilience.shed_policy == "shed-oldest"
        assert config.resilience.reject_poison_frames is True

    def test_round_trips_with_non_default_values(self):
        config = ArrayTrackConfig(
            bounds=(0.0, 0.0, 5.0, 5.0),
            resilience=ResilienceConfig(
                max_retries=5, backoff_base_s=0.01, shard_timeout_s=3.0,
                breaker_threshold=1, max_total_pending_frames=128,
                shed_policy="reject",
                fault_plan='[{"kind": "poison-frame"}]'))
        restored = ArrayTrackConfig.from_dict(config.to_dict())
        assert restored == config
        assert restored.resilience.shard_timeout_s == 3.0
        assert ArrayTrackConfig.from_json(config.to_json()) == config

    @pytest.mark.parametrize("kwargs", [
        {"supervise_pool": 1},
        {"max_retries": -1},
        {"max_retries": True},
        {"backoff_base_s": -0.1},
        {"backoff_jitter": -0.5},
        {"retry_seed": 1.5},
        {"shard_timeout_s": 0.0},
        {"breaker_threshold": 0},
        {"breaker_recovery_s": -1.0},
        {"max_total_pending_frames": 0},
        {"shed_policy": "drop-newest"},
        {"reject_poison_frames": "yes"},
        {"fault_plan": 42},
    ])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ResilienceConfig(**kwargs)

    def test_invalid_value_names_path_from_dict(self):
        with pytest.raises(ConfigurationError, match="resilience"):
            ArrayTrackConfig.from_dict(
                {"resilience": {"shed_policy": "panic"}})

    def test_env_override_reaches_resilience_section(self):
        config = ArrayTrackConfig(bounds=(0.0, 0.0, 5.0, 5.0))
        updated = config.with_env_overrides({
            "ARRAYTRACK_RESILIENCE__MAX_RETRIES": "4",
            "ARRAYTRACK_RESILIENCE__SHARD_TIMEOUT_S": "2.5",
            "ARRAYTRACK_RESILIENCE__SHED_POLICY": "reject",
            "ARRAYTRACK_RESILIENCE__BREAKER_ENABLED": "false",
        })
        assert updated.resilience.max_retries == 4
        assert updated.resilience.shard_timeout_s == 2.5
        assert updated.resilience.shed_policy == "reject"
        assert updated.resilience.breaker_enabled is False

    def test_dotted_override_reaches_resilience_section(self):
        config = ArrayTrackConfig(bounds=(0.0, 0.0, 5.0, 5.0)).updated(
            {"resilience.max_total_pending_frames": 64})
        assert config.resilience.max_total_pending_frames == 64


class TestSuppressorAlias:
    def test_alias_is_the_suppressor_dataclass(self):
        from repro.core.suppression import MultipathSuppressor

        assert SuppressorConfig is MultipathSuppressor

    def test_spectrum_config_round_trips_inside_ap_section(self):
        config = ArrayTrackConfig(bounds=(0.0, 0.0, 5.0, 5.0))
        data = config.to_dict()
        assert data["ap"]["spectrum"]["method"] == "music"
        assert data["ap"]["spectrum"]["vectorized_frontend"] is True
        restored = ArrayTrackConfig.from_dict(data)
        assert restored.ap.spectrum == SpectrumConfig()

    def test_vectorized_frontend_configurable_through_the_tree(self):
        config = ArrayTrackConfig(bounds=(0.0, 0.0, 5.0, 5.0)).updated(
            {"ap.spectrum.vectorized_frontend": False})
        assert config.ap.spectrum.vectorized_frontend is False
        restored = ArrayTrackConfig.from_json(config.to_json())
        assert restored.ap.spectrum.vectorized_frontend is False
        with pytest.raises(ConfigurationError,
                           match=r"config\.ap\.spectrum"):
            ArrayTrackConfig.from_dict(
                {"ap": {"spectrum": {"vectorized_frontend": "yes"}}})
        overridden = config.with_env_overrides(
            {"ARRAYTRACK_AP__SPECTRUM__VECTORIZED_FRONTEND": "true"})
        assert overridden.ap.spectrum.vectorized_frontend is True
