"""Tests for the string-keyed estimator/baseline registry."""

from dataclasses import replace

import numpy as np
import pytest

from repro.api import (
    AOA,
    RSS,
    ArrayTrackConfig,
    ArrayTrackService,
    EstimatorSpec,
    available_estimators,
    create_baseline,
    get_estimator,
    register_estimator,
)
from repro.baselines import WeightedCentroidLocalizer
from repro.core import SpectrumComputer, SpectrumConfig
from repro.errors import ConfigurationError
from repro.geometry import Point2D

BOUNDS = (0.0, 0.0, 20.0, 10.0)


class TestBuiltins:
    def test_builtin_names_registered(self):
        names = available_estimators()
        for name in ("music", "bartlett", "capon", "rssi"):
            assert name in names

    def test_unknown_name_lists_registered(self):
        with pytest.raises(ConfigurationError, match="music"):
            get_estimator("esprit")

    @pytest.mark.parametrize("method", ["music", "bartlett", "capon"])
    def test_aoa_specialization_matches_hardcoded_config(self, method):
        # The exact SpectrumConfig the ablation benchmarks always built by
        # hand: named lookup must reproduce it field for field.
        spec = get_estimator(method)
        assert spec.kind == AOA
        assert spec.specialize(SpectrumConfig()) == SpectrumConfig(method=method)

    def test_specialize_preserves_other_fields(self):
        base = SpectrumConfig(smoothing_groups=3, apply_weighting=False)
        specialized = get_estimator("bartlett").specialize(base)
        assert specialized == replace(base, method="bartlett")

    def test_rssi_is_a_baseline(self):
        spec = get_estimator("rssi")
        assert spec.kind == RSS
        baseline = create_baseline("rssi", {"ap0": Point2D(0.0, 0.0)})
        assert isinstance(baseline, WeightedCentroidLocalizer)

    def test_rssi_cannot_drive_the_aoa_pipeline(self):
        with pytest.raises(ConfigurationError, match="baseline"):
            get_estimator("rssi").specialize(SpectrumConfig())
        with pytest.raises(ConfigurationError, match="baseline"):
            ArrayTrackService(ArrayTrackConfig(bounds=BOUNDS, estimator="rssi"))

    def test_aoa_estimator_cannot_be_built_as_baseline(self):
        with pytest.raises(ConfigurationError, match="spectra-driven"):
            create_baseline("music", {"ap0": Point2D(0.0, 0.0)})


class TestRegistration:
    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_estimator(EstimatorSpec(name="music", kind=AOA,
                                             spectrum_method="music"))

    def test_register_and_use_custom_estimator(self):
        register_estimator(
            EstimatorSpec(
                name="music-fb-test", kind=AOA,
                description="MUSIC with forward-backward smoothing",
                configure=lambda spectrum: replace(
                    spectrum, method="music", forward_backward=True)),
            replace_existing=True)
        service = ArrayTrackService(ArrayTrackConfig(
            bounds=BOUNDS, estimator="music-fb-test"))
        assert service.spectrum_config.forward_backward is True
        assert service.spectrum_config.method == "music"

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            EstimatorSpec(name="", kind=AOA, spectrum_method="music")
        with pytest.raises(ConfigurationError):
            EstimatorSpec(name="x", kind="other", spectrum_method="music")
        with pytest.raises(ConfigurationError):
            EstimatorSpec(name="x", kind=AOA)
        with pytest.raises(ConfigurationError):
            EstimatorSpec(name="x", kind=RSS)


class TestServiceIntegration:
    def test_service_applies_estimator_to_spectrum_config(self):
        service = ArrayTrackService(ArrayTrackConfig(bounds=BOUNDS,
                                                     estimator="bartlett"))
        assert service.spectrum_config == SpectrumConfig(method="bartlett")
        assert service.estimator_spec.name == "bartlett"

    def test_built_aps_inherit_the_estimator(self):
        service = ArrayTrackService(ArrayTrackConfig(bounds=BOUNDS,
                                                     estimator="capon"))
        ap = service.build_ap("ap0", Point2D(1.0, 1.0))
        assert ap.config.spectrum.method == "capon"

    def test_built_ap_configs_are_isolated(self):
        service = ArrayTrackService(ArrayTrackConfig(bounds=BOUNDS))
        first = service.build_ap("ap0", Point2D(1.0, 1.0))
        second = service.build_ap("ap1", Point2D(2.0, 2.0))
        first.config.spectrum.method = "bartlett"
        assert second.config.spectrum.method == "music"
        assert service.spectrum_config.method == "music"

    def test_unknown_estimator_rejected_at_service_construction(self):
        with pytest.raises(ConfigurationError, match="unknown estimator"):
            ArrayTrackService(ArrayTrackConfig(bounds=BOUNDS,
                                               estimator="esprit"))

    def test_registry_spectrum_equals_direct_pipeline(self, capture_snapshots,
                                                      deployed_ula8):
        """Named selection computes the same spectrum as the hardcoded config."""
        service = ArrayTrackService(ArrayTrackConfig(bounds=BOUNDS,
                                                     estimator="bartlett"))
        via_registry = SpectrumComputer(service.spectrum_config).compute(
            capture_snapshots, deployed_ula8)
        direct = SpectrumComputer(SpectrumConfig(method="bartlett")).compute(
            capture_snapshots, deployed_ula8)
        assert np.array_equal(via_registry.power, direct.power)
