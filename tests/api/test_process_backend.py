"""Cross-backend equality matrix for the process parallel backend.

The contract under test: ``parallel.backend="process"`` produces bit-for-bit
the same fixes, in the same client order, as both the serial path and the
thread backend, for every batched entry point (``localize_many``,
``localize_buffered``, ``tick``, ``flush``) at mixed shard sizes --
including batches below ``2 * min_clients_per_worker``, where the process
service silently stays serial.  And because the backend moves spectra
through ``multiprocessing.shared_memory``, every test also asserts clean
teardown: no live segment after any call, none after ``close()``, and no
``arraytrack_*`` name left in ``/dev/shm``.
"""

import glob

import numpy as np
import pytest

from repro.api import ArrayTrackConfig, ArrayTrackService
from repro.api._procpool import SEGMENT_PREFIX, live_segments
from repro.channel import MultipathChannel
from repro.core import AoASpectrum, default_angle_grid
from repro.geometry import Point2D, bearing_deg

BOUNDS = (0.0, 0.0, 20.0, 10.0)
AP_POSITIONS = [Point2D(1.0, 1.0), Point2D(19.0, 1.0), Point2D(10.0, 9.5)]
#: Small pool: spawn cost dominates on CI runners, equality does not need
#: more workers to be exercised.
NUM_WORKERS = 2
MIN_CLIENTS_PER_WORKER = 2
#: Mixed batch sizes: 3 stays below 2 * min_clients_per_worker (serial
#: fallback inside the process-backend service), 7 fans out unevenly,
#: 22 exercises several clients per shard.
BATCH_SIZES = [3, 7, 22]


def _spectrum_towards(ap_position, target, timestamp_s=0.0, client_id="",
                      noise=None):
    angles = default_angle_grid(1.0)
    bearing = bearing_deg(ap_position, target)
    distance = np.minimum(np.abs(angles - bearing),
                          360 - np.abs(angles - bearing))
    power = np.exp(-0.5 * (distance / 3.0) ** 2) + 1e-4
    if noise is not None:
        power = power + noise
    return AoASpectrum(angles, power, ap_position=ap_position,
                       ap_id=f"ap@{ap_position.x:.0f},{ap_position.y:.0f}",
                       client_id=client_id, timestamp_s=timestamp_s)


def _clients(count, seed):
    """Randomized batch: random positions plus per-spectrum noise."""
    rng = np.random.default_rng(seed)
    grid_points = default_angle_grid(1.0).shape[0]
    clients = {}
    for index in range(count):
        target = Point2D(rng.uniform(2, 18), rng.uniform(2, 8))
        clients[f"c{index}"] = {
            f"ap{i}": [_spectrum_towards(
                position, target, noise=0.01 * rng.random(grid_points))]
            for i, position in enumerate(AP_POSITIONS)}
    return clients


def _config(backend, **overrides):
    config = ArrayTrackConfig(bounds=BOUNDS).updated(
        {"server.localizer.grid_resolution_m": 0.25, **overrides})
    if backend != "none":
        config = config.updated({
            "parallel.backend": backend,
            "parallel.num_workers": NUM_WORKERS,
            "parallel.min_clients_per_worker": MIN_CLIENTS_PER_WORKER})
    return config


def _assert_identical(actual, expected):
    assert list(actual) == list(expected)
    for key in expected:
        assert actual[key].position.x == expected[key].position.x
        assert actual[key].position.y == expected[key].position.y
        assert actual[key].likelihood == expected[key].likelihood
        assert actual[key].num_aps == expected[key].num_aps


def _assert_no_segments():
    assert live_segments() == frozenset()
    assert glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*") == []


@pytest.fixture(autouse=True)
def no_leaked_segments():
    """Every test in this module must leave zero live shm segments."""
    yield
    _assert_no_segments()


class TestLocalizeManyMatrix:
    @pytest.fixture(scope="class")
    def process_service(self):
        # One persistent pool for the whole size sweep: workers spawn once,
        # which is exactly how the backend is meant to amortize its cost.
        with ArrayTrackService(_config("process")) as service:
            yield service

    @pytest.mark.parametrize("count", BATCH_SIZES)
    def test_equality_across_backends(self, process_service, count):
        clients = _clients(count, seed=100 + count)
        serial = ArrayTrackService(_config("none")).localize_many(clients)
        with ArrayTrackService(_config("thread")) as thread_service:
            threaded = thread_service.localize_many(clients)
        processed = process_service.localize_many(clients)
        _assert_no_segments()
        _assert_identical(threaded, serial)
        _assert_identical(processed, serial)

    def test_small_batch_never_spawns_workers(self):
        # Run the smallest batch against a *fresh* process service: below
        # 2 * min_clients_per_worker no shards form and no pool starts.
        with ArrayTrackService(_config("process")) as service:
            fixes = service.localize_many(_clients(3, seed=7))
            assert len(fixes) == 3
            assert service._procpool is None


class TestLocalizeBufferedMatrix:
    def _build(self, backend):
        service = ArrayTrackService(_config(backend))
        for index, position in enumerate(AP_POSITIONS):
            ap = service.build_ap(f"ap{index}", position,
                                  rng=np.random.default_rng(index))
            for client in range(6):
                channel = MultipathChannel.from_bearings(
                    [20.0 + 17.0 * client], [1.0], direct_index=0,
                    client_id=f"c{client}", ap_id=ap.ap_id)
                ap.overhear(channel, timestamp_s=0.0)
        return service

    def test_equality_across_backends(self):
        client_ids = [f"c{i}" for i in range(6)]
        serial = self._build("none").localize_buffered(client_ids)
        with self._build("thread") as thread_service:
            threaded = thread_service.localize_buffered(client_ids)
        with self._build("process") as process_service:
            processed = process_service.localize_buffered(client_ids)
            _assert_no_segments()
        _assert_identical(threaded, serial)
        _assert_identical(processed, serial)


class TestStreamingMatrix:
    def _ingest(self, service, count, seed=11):
        rng = np.random.default_rng(seed)
        grid_points = default_angle_grid(1.0).shape[0]
        for index in range(count):
            target = Point2D(rng.uniform(2, 18), rng.uniform(2, 8))
            for i, position in enumerate(AP_POSITIONS):
                for frame in range(2):
                    service.ingest(
                        f"ap{i}",
                        _spectrum_towards(
                            position, target, timestamp_s=frame * 0.01,
                            noise=0.01 * rng.random(grid_points)),
                        client_id=f"c{index}",
                        timestamp_s=frame * 0.01)

    @pytest.mark.parametrize("suppress", [False, True])
    def test_tick_equality_across_backends(self, suppress):
        overrides = {"session.emit_every_frames": 1,
                     "session.suppress_multipath": suppress}
        results = {}
        for backend in ("none", "thread", "process"):
            with ArrayTrackService(_config(backend, **overrides)) as service:
                self._ingest(service, 10)
                results[backend] = service.tick()
                _assert_no_segments()
                assert all(session.pending_frames == 0
                           for session in service.sessions.values())
                assert all(service.latest_fix(key) is not None
                           for key in results[backend])
        _assert_identical(results["thread"], results["none"])
        _assert_identical(results["process"], results["none"])

    def test_flush_equality_across_backends(self):
        overrides = {"session.emit_every_frames": 0}
        results = {}
        for backend in ("none", "thread", "process"):
            with ArrayTrackService(_config(backend, **overrides)) as service:
                self._ingest(service, 8, seed=23)
                results[backend] = service.flush()
                _assert_no_segments()
        _assert_identical(results["thread"], results["none"])
        _assert_identical(results["process"], results["none"])


class TestSharedMemoryTeardown:
    def test_segments_cleaned_after_calls_and_close(self):
        service = ArrayTrackService(_config("process"))
        clients = _clients(8, seed=42)
        for _ in range(3):
            service.localize_many(clients)
            _assert_no_segments()
        assert service._procpool is not None
        assert service._procpool.started
        service.close()
        _assert_no_segments()
        assert service._procpool is None
