"""Pickle round-trip contracts the process backend depends on.

``parallel.backend="process"`` ships the service's
:class:`~repro.api.config.ArrayTrackConfig` tree through the spawn pipe to
every worker (and benchmark/experiment code pickles testbeds and geometry
for the same reason), so these objects must round-trip through
``pickle.dumps``/``loads`` cheaply and with *behavioral* equality -- not
just attribute equality: an unpickled config must build a service that
produces bit-identical fixes, an unpickled geometry must produce the same
steering matrices.
"""

import pickle

import numpy as np
import pytest

from repro.api import ArrayTrackConfig, ArrayTrackService
from repro.api.config import _config_from_state
from repro.array import ArrayGeometry
from repro.core import AoASpectrum, default_angle_grid
from repro.errors import ConfigurationError
from repro.geometry import Point2D, bearing_deg
from repro.testbed.office import OfficeTestbed

BOUNDS = (0.0, 0.0, 20.0, 10.0)


def _round_trip(obj):
    return pickle.loads(pickle.dumps(obj))


class TestConfigPickling:
    def test_default_tree_round_trips(self):
        config = ArrayTrackConfig()
        restored = _round_trip(config)
        assert isinstance(restored, ArrayTrackConfig)
        assert restored == config
        assert restored.to_json() == config.to_json()

    def test_every_section_survives_with_non_default_values(self):
        config = ArrayTrackConfig(bounds=BOUNDS, estimator="bartlett").updated({
            "ap.num_antennas": 4,
            "ap.spectrum.angle_resolution_deg": 2.0,
            "server.localizer.grid_resolution_m": 0.2,
            "server.enable_multipath_suppression": False,
            "session.emit_every_frames": 5,
            "session.suppress_multipath": True,
            "suppressor.tolerance_deg": 7.5,
            "tracker.smoothing_factor": 0.5,
            "parallel.backend": "process",
            "parallel.num_workers": 3,
            "parallel.min_clients_per_worker": 4,
        })
        restored = _round_trip(config)
        assert restored == config
        assert restored.parallel.backend == "process"
        assert restored.parallel.num_workers == 3
        assert restored.session.suppress_multipath is True
        assert restored.server.localizer.grid_resolution_m == 0.2
        assert restored.estimator == "bartlett"
        assert restored.bounds == BOUNDS

    def test_pickle_payload_is_the_plain_dict_tree(self):
        # The reduce hook must go through the dict round-trip (so workers
        # re-validate on unpickle), not through per-field __dict__ state.
        config = ArrayTrackConfig(bounds=BOUNDS)
        rebuild, (state,) = config.__reduce__()
        assert rebuild is _config_from_state
        assert isinstance(state, dict)
        assert state == config.to_dict()
        assert rebuild(state) == config

    def test_unpickling_re_validates(self):
        config = ArrayTrackConfig(bounds=BOUNDS)
        rebuild, (state,) = config.__reduce__()
        state["parallel"]["backend"] = "mpi"
        with pytest.raises(ConfigurationError, match="backend"):
            rebuild(state)

    def test_unpickled_config_builds_an_identical_service(self):
        config = ArrayTrackConfig(bounds=BOUNDS).updated(
            {"server.localizer.grid_resolution_m": 0.5})
        angles = default_angle_grid(1.0)
        ap_positions = [Point2D(1.0, 1.0), Point2D(19.0, 1.0)]
        target = Point2D(12.0, 6.0)
        clients = {}
        for index in range(3):
            per_ap = {}
            for i, position in enumerate(ap_positions):
                bearing = bearing_deg(position, target)
                distance = np.minimum(np.abs(angles - bearing),
                                      360 - np.abs(angles - bearing))
                power = np.exp(-0.5 * (distance / 3.0) ** 2) + 1e-4
                per_ap[f"ap{i}"] = [AoASpectrum(
                    angles, power, ap_position=position, ap_id=f"ap{i}")]
            clients[f"c{index}"] = per_ap
        original = ArrayTrackService(config).localize_many(clients)
        restored = ArrayTrackService(_round_trip(config)).localize_many(clients)
        assert list(restored) == list(original)
        for key in original:
            assert restored[key].position.x == original[key].position.x
            assert restored[key].position.y == original[key].position.y
            assert restored[key].likelihood == original[key].likelihood


class TestTestbedAndGeometryPickling:
    def test_office_testbed_round_trips(self):
        testbed = OfficeTestbed()
        restored = _round_trip(testbed)
        assert restored.bounds == testbed.bounds
        assert restored.ap_ids() == testbed.ap_ids()
        assert restored.client_ids() == testbed.client_ids()
        for ap_id in testbed.ap_ids():
            original_site = testbed.ap_site(ap_id)
            restored_site = restored.ap_site(ap_id)
            assert restored_site.position == original_site.position
            assert restored_site.orientation_deg == original_site.orientation_deg
        for client_id in testbed.client_ids():
            assert restored.client_position(client_id) \
                == testbed.client_position(client_id)

    def test_array_geometry_round_trips_behaviorally(self):
        geometry = ArrayGeometry.uniform_linear(8)
        restored = _round_trip(geometry)
        assert restored.num_elements == geometry.num_elements
        np.testing.assert_array_equal(restored.element_positions,
                                      geometry.element_positions)
        angles = default_angle_grid(1.0)
        np.testing.assert_array_equal(
            restored.steering_matrix(angles, 0.0, 0.125),
            geometry.steering_matrix(angles, 0.0, 0.125))

    def test_spectrum_round_trips(self):
        angles = default_angle_grid(1.0)
        rng = np.random.default_rng(5)
        spectrum = AoASpectrum(
            angles, rng.random(angles.shape[0]) + 0.01,
            ap_position=Point2D(3.0, 4.0), ap_orientation_deg=45.0,
            client_id="c1", ap_id="ap1", timestamp_s=1.25)
        restored = _round_trip(spectrum)
        np.testing.assert_array_equal(restored.angles_deg, spectrum.angles_deg)
        np.testing.assert_array_equal(restored.power, spectrum.power)
        assert restored.ap_position == spectrum.ap_position
        assert restored.ap_orientation_deg == spectrum.ap_orientation_deg
        assert restored.client_id == spectrum.client_id
        assert restored.ap_id == spectrum.ap_id
        assert restored.timestamp_s == spectrum.timestamp_s
