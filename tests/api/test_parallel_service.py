"""Tests for the sharded parallel execution layer (the ``parallel`` section).

The contract under test: with ``parallel.backend="thread"`` every batched
entry point (`localize_many`, `localize_buffered`, `tick`/`flush`) produces
bit-for-bit the same fixes, in the same client order, as the serial path --
sharding only changes *where* each shard's synthesis runs.
"""

import numpy as np
import pytest
from concurrent.futures.process import BrokenProcessPool

from repro.api import ArrayTrackConfig, ArrayTrackService, ParallelConfig
from repro.api._procpool import live_segments
from repro.channel import MultipathChannel
from repro.core import AoASpectrum, default_angle_grid
from repro.errors import ConfigurationError, EstimationError
from repro.geometry import Point2D, bearing_deg

BOUNDS = (0.0, 0.0, 20.0, 10.0)
AP_POSITIONS = [Point2D(1.0, 1.0), Point2D(19.0, 1.0), Point2D(10.0, 9.5)]


def _spectrum_towards(ap_position, target, timestamp_s=0.0, client_id=""):
    angles = default_angle_grid(1.0)
    bearing = bearing_deg(ap_position, target)
    distance = np.minimum(np.abs(angles - bearing),
                          360 - np.abs(angles - bearing))
    power = np.exp(-0.5 * (distance / 3.0) ** 2) + 1e-4
    return AoASpectrum(angles, power, ap_position=ap_position,
                       ap_id=f"ap@{ap_position.x:.0f},{ap_position.y:.0f}",
                       client_id=client_id, timestamp_s=timestamp_s)


def _clients(count, seed=3):
    rng = np.random.default_rng(seed)
    clients = {}
    for index in range(count):
        target = Point2D(rng.uniform(2, 18), rng.uniform(2, 8))
        clients[f"c{index}"] = {
            f"ap{i}": [_spectrum_towards(p, target)]
            for i, p in enumerate(AP_POSITIONS)}
    return clients


def _service(parallel=None, **overrides):
    config = ArrayTrackConfig(bounds=BOUNDS).updated(
        {"server.localizer.grid_resolution_m": 0.25, **overrides})
    if parallel is not None:
        config = config.updated({
            f"parallel.{key}": value for key, value in parallel.items()})
    return ArrayTrackService(config)


def _assert_identical(sharded, serial):
    assert list(sharded) == list(serial)
    for key in serial:
        assert sharded[key].position.x == serial[key].position.x
        assert sharded[key].position.y == serial[key].position.y
        assert sharded[key].likelihood == serial[key].likelihood
        assert sharded[key].num_aps == serial[key].num_aps


class TestParallelConfigSection:
    def test_defaults_off(self):
        config = ArrayTrackConfig()
        assert config.parallel == ParallelConfig()
        assert config.parallel.backend == "none"

    def test_round_trips_with_non_default_values(self):
        config = ArrayTrackConfig(
            bounds=BOUNDS,
            parallel=ParallelConfig(backend="thread", num_workers=2,
                                    min_clients_per_worker=4))
        restored = ArrayTrackConfig.from_dict(config.to_dict())
        assert restored == config
        assert restored.parallel.num_workers == 2
        assert ArrayTrackConfig.from_json(config.to_json()) == config

    def test_env_override_reaches_parallel_section(self):
        config = ArrayTrackConfig(bounds=BOUNDS).with_env_overrides({
            "ARRAYTRACK_PARALLEL__BACKEND": "thread",
            "ARRAYTRACK_PARALLEL__NUM_WORKERS": "3",
        })
        assert config.parallel.backend == "thread"
        assert config.parallel.num_workers == 3

    @pytest.mark.parametrize("kwargs", [
        {"backend": "fork"},
        {"backend": ""},
        {"num_workers": 0},
        {"num_workers": 2.5},
        # bool is an int subclass; ARRAYTRACK_PARALLEL__NUM_WORKERS=true
        # must not silently become one worker that never fans out.
        {"num_workers": True},
        {"min_clients_per_worker": 0},
        {"min_clients_per_worker": False},
    ])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ParallelConfig(**kwargs)

    def test_invalid_value_names_path_from_dict(self):
        with pytest.raises(ConfigurationError, match="backend"):
            ArrayTrackConfig.from_dict({"parallel": {"backend": "mpi"}})


class TestShardedLocalizeMany:
    def test_bit_identical_to_serial_and_order_preserving(self):
        clients = _clients(24)
        serial = _service().localize_many(clients)
        with _service(parallel={"backend": "thread", "num_workers": 4,
                                "min_clients_per_worker": 2}) as sharded_svc:
            sharded = sharded_svc.localize_many(clients)
        _assert_identical(sharded, serial)

    def test_small_batches_stay_serial(self):
        service = _service(parallel={"backend": "thread", "num_workers": 4,
                                     "min_clients_per_worker": 8})
        # 9 clients < 2 shards x 8 -> no fan-out, and no pool is created.
        fixes = service.localize_many(_clients(9))
        assert len(fixes) == 9
        assert service._executor is None

    def test_pool_is_lazy_and_close_is_idempotent(self):
        service = _service(parallel={"backend": "thread", "num_workers": 2,
                                     "min_clients_per_worker": 2})
        assert service._executor is None
        service.localize_many(_clients(8))
        assert service._executor is not None
        service.close()
        assert service._executor is None
        service.close()

    def test_double_close_is_idempotent_for_process_backend(self):
        service = _service(parallel={"backend": "process", "num_workers": 2,
                                     "min_clients_per_worker": 2})
        service.localize_many(_clients(6))
        assert service._procpool is not None
        service.close()
        assert service._procpool is None
        service.close()
        assert live_segments() == frozenset()

    @pytest.mark.parametrize("backend", ["none", "thread", "process"])
    def test_use_after_close_raises_clear_error(self, backend):
        parallel = None if backend == "none" else {
            "backend": backend, "num_workers": 2,
            "min_clients_per_worker": 2}
        service = _service(parallel=parallel)
        service.close()
        with pytest.raises(ConfigurationError, match="closed"):
            service.localize_many(_clients(6))
        with pytest.raises(ConfigurationError, match="closed"):
            service.tick()
        with pytest.raises(ConfigurationError, match="closed"):
            service.flush()
        with pytest.raises(ConfigurationError, match="closed"):
            service.localize_buffered(["c0"])

    def test_measured_processing_time_covers_whole_pass(self):
        service = _service(parallel={"backend": "thread", "num_workers": 2,
                                     "min_clients_per_worker": 2},
                           **{"server.measure_processing_time": True})
        service.localize_many(_clients(8))
        assert service.last_processing_s is not None
        assert service.last_processing_s > 0.0
        service.close()


class TestShardedStreaming:
    def _ingest(self, service, count):
        rng = np.random.default_rng(11)
        for index in range(count):
            target = Point2D(rng.uniform(2, 18), rng.uniform(2, 8))
            for i, position in enumerate(AP_POSITIONS):
                for frame in range(2):
                    service.ingest(
                        f"ap{i}",
                        _spectrum_towards(position, target,
                                          timestamp_s=frame * 0.01),
                        client_id=f"c{index}",
                        timestamp_s=frame * 0.01)

    @pytest.mark.parametrize("suppress", [False, True])
    def test_tick_bit_identical_to_serial(self, suppress):
        overrides = {"session.emit_every_frames": 1,
                     "session.suppress_multipath": suppress}
        serial_svc = _service(**overrides)
        sharded_svc = _service(parallel={"backend": "thread",
                                         "num_workers": 4,
                                         "min_clients_per_worker": 2},
                               **overrides)
        self._ingest(serial_svc, 12)
        self._ingest(sharded_svc, 12)
        serial = serial_svc.tick()
        sharded = sharded_svc.tick()
        _assert_identical(sharded, serial)
        # Fixes landed in the tracker and the sessions drained, both paths.
        for service in (serial_svc, sharded_svc):
            assert all(session.pending_frames == 0
                       for session in service.sessions.values())
            assert all(service.latest_fix(key) is not None for key in sharded)
        sharded_svc.close()

    def test_flush_uses_sharding_too(self):
        overrides = {"session.emit_every_frames": 0}
        serial_svc = _service(**overrides)
        sharded_svc = _service(parallel={"backend": "thread",
                                         "num_workers": 2,
                                         "min_clients_per_worker": 2},
                               **overrides)
        self._ingest(serial_svc, 8)
        self._ingest(sharded_svc, 8)
        _assert_identical(sharded_svc.flush(), serial_svc.flush())
        sharded_svc.close()


class TestShardedBuffered:
    def test_localize_buffered_matches_serial(self):
        def build(parallel):
            service = _service(parallel=parallel)
            for index, position in enumerate(AP_POSITIONS):
                ap = service.build_ap(f"ap{index}", position,
                                      rng=np.random.default_rng(index))
                for client in range(6):
                    channel = MultipathChannel.from_bearings(
                        [30.0 + 15.0 * client], [1.0], direct_index=0,
                        client_id=f"c{client}", ap_id=ap.ap_id)
                    ap.overhear(channel, timestamp_s=0.0)
            return service

        client_ids = [f"c{i}" for i in range(6)]
        serial = build(None).localize_buffered(client_ids)
        sharded_svc = build({"backend": "thread", "num_workers": 3,
                             "min_clients_per_worker": 1})
        sharded = sharded_svc.localize_buffered(client_ids)
        _assert_identical(sharded, serial)
        sharded_svc.close()


class TestProcessPoolFailureModes:
    """Lifecycle edge cases of the process backend's worker pool."""

    def _process_service(self):
        return _service(parallel={"backend": "process", "num_workers": 2,
                                  "min_clients_per_worker": 2})

    def _poisoned_clients(self):
        """A fan-out-sized batch whose last client fails in the worker."""
        clients = _clients(6)
        angles = default_angle_grid(1.0)
        clients["poisoned"] = {"ap0": [AoASpectrum(
            angles, np.ones_like(angles), ap_position=None,
            client_id="poisoned", ap_id="ap0")]}
        return clients

    def test_worker_exception_surfaces_original_error(self):
        with self._process_service() as service:
            with pytest.raises(EstimationError) as excinfo:
                service.localize_many(self._poisoned_clients())
            # concurrent.futures chains the remote traceback text onto the
            # unpickled exception, so the worker-side failure site is
            # visible to the caller instead of a bare opaque error.
            assert excinfo.value.__cause__ is not None
            assert "EstimationError" in str(excinfo.value.__cause__)
            assert live_segments() == frozenset()
            # The pool survives a task-level exception and stays usable.
            fixes = service.localize_many(_clients(6))
            assert len(fixes) == 6
        assert live_segments() == frozenset()

    def test_context_manager_exit_under_inflight_exception(self):
        service = self._process_service()
        with pytest.raises(EstimationError):
            with service:
                service.localize_many(_clients(6))   # spawn the workers
                service.localize_many(self._poisoned_clients())
        # The with-block closed the service despite the in-flight failure:
        # pools are gone, nothing leaked, further use raises.
        assert service._procpool is None
        assert live_segments() == frozenset()
        with pytest.raises(ConfigurationError, match="closed"):
            service.localize_many(_clients(6))

    def test_worker_crash_recovers_under_supervision(self):
        import os as _os

        service = self._process_service()
        baseline = service.localize_many(_clients(6))   # spawn + warm
        executor = service._procpool._ensure()
        # Hard-kill one worker: the pool breaks (reported, not a deadlock)
        # ...
        doomed = executor.submit(_os._exit, 3)
        with pytest.raises(BrokenProcessPool):
            doomed.result(timeout=120)
        # ... and the default supervision rebuilds it on the next batched
        # call, which succeeds bit-identically instead of propagating the
        # breakage.
        _assert_identical(service.localize_many(_clients(6)), baseline)
        assert service._procpool.stats.rebuilds >= 1
        assert live_segments() == frozenset()
        # close() still works on a supervised (rebuilt) pool.
        service.close()
        assert service._procpool is None

    def test_worker_crash_raises_without_supervision(self):
        import os as _os

        service = _service(
            parallel={"backend": "process", "num_workers": 2,
                      "min_clients_per_worker": 2},
            **{"resilience.supervise_pool": False,
               "resilience.breaker_enabled": False})
        service.localize_many(_clients(6))   # spawn + warm the workers
        executor = service._procpool._ensure()
        doomed = executor.submit(_os._exit, 3)
        with pytest.raises(BrokenProcessPool):
            doomed.result(timeout=120)
        # PR-6 semantics restored: the breakage propagates to the caller.
        with pytest.raises(BrokenProcessPool):
            service.localize_many(_clients(6))
        assert live_segments() == frozenset()
        # close() still works on a broken pool.
        service.close()
        assert service._procpool is None
