"""Property-based tests on the core data structures and invariants.

These complement the scenario-driven tests with hypothesis-driven checks of
the algebraic properties the pipeline relies on: steering-vector structure,
spectrum mirroring, window bounds, covariance hermiticity under arbitrary
snapshots and suppression never amplifying a spectrum.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.array import ArrayGeometry
from repro.core import (
    AoASpectrum,
    MultipathSuppressor,
    default_angle_grid,
    geometry_window,
    sample_covariance,
    spectrum_from_noise_subspace,
)
from repro.core.likelihood import synthesize_likelihood
from repro.geometry import Point2D

angles = st.floats(min_value=0.0, max_value=360.0, allow_nan=False,
                   allow_infinity=False)
num_antennas = st.integers(min_value=2, max_value=12)


def _random_snapshots(draw_shape, seed):
    rng = np.random.default_rng(seed)
    real = rng.normal(size=draw_shape)
    imaginary = rng.normal(size=draw_shape)
    return real + 1j * imaginary


class TestSteeringProperties:
    @settings(max_examples=30, deadline=None)
    @given(num_antennas, angles)
    def test_steering_vectors_have_unit_modulus_entries(self, antennas, azimuth):
        geometry = ArrayGeometry.uniform_linear(antennas)
        vector = geometry.steering_vector(azimuth)
        assert vector.shape == (antennas,)
        assert np.allclose(np.abs(vector), 1.0)

    @settings(max_examples=30, deadline=None)
    @given(num_antennas, angles, angles)
    def test_steering_matrix_columns_match_vectors(self, antennas, az1, az2):
        geometry = ArrayGeometry.uniform_linear(antennas)
        matrix = geometry.steering_matrix(np.array([az1, az2]))
        assert matrix.shape == (antennas, 2)
        assert np.allclose(matrix[:, 0], geometry.steering_vector(az1))
        assert np.allclose(matrix[:, 1], geometry.steering_vector(az2))


class TestCovarianceProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=2, max_value=10),
           st.integers(min_value=1, max_value=30),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    def test_sample_covariance_is_hermitian_psd(self, antennas, snapshots, seed):
        samples = _random_snapshots((antennas, snapshots), seed)
        covariance = sample_covariance(samples)
        assert covariance.shape == (antennas, antennas)
        assert np.allclose(covariance, covariance.conj().T)
        assert np.all(np.linalg.eigvalsh(covariance) > -1e-10)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=3, max_value=8),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    def test_music_spectrum_is_positive(self, antennas, seed):
        samples = _random_snapshots((antennas, 16), seed)
        covariance = sample_covariance(samples)
        eigenvalues, eigenvectors = np.linalg.eigh(covariance)
        noise_subspace = eigenvectors[:, :antennas - 1]
        geometry = ArrayGeometry.uniform_linear(antennas)
        steering = geometry.steering_matrix(default_angle_grid(2.0, False))
        power = spectrum_from_noise_subspace(noise_subspace, steering)
        assert np.all(power > 0.0)
        assert np.all(np.isfinite(power))


class TestSpectrumProperties:
    @settings(max_examples=25, deadline=None)
    @given(hnp.arrays(np.float64, 181, elements=st.floats(min_value=0.0,
                                                          max_value=1e6)))
    def test_mirroring_preserves_half_spectrum_values(self, half_power):
        half_angles = default_angle_grid(1.0, full_circle=False)
        if np.all(half_power == 0):
            half_power = half_power + 1e-6
        spectrum = AoASpectrum.from_half_spectrum(half_angles, half_power)
        assert np.allclose(spectrum.power[:181], half_power)
        # Mirror property: P(360 - theta) == P(theta) for interior angles.
        for theta in (10.0, 45.0, 90.0, 135.0, 170.0):
            assert spectrum.power_at_local(360.0 - theta)[0] == pytest.approx(
                spectrum.power_at_local(theta)[0], rel=1e-9, abs=1e-12)

    @settings(max_examples=25, deadline=None)
    @given(angles)
    def test_geometry_window_bounds(self, angle):
        window = geometry_window(np.array([angle]))
        assert 0.0 <= window[0] <= 1.0

    @settings(max_examples=15, deadline=None)
    @given(hnp.arrays(np.float64, 360,
                      elements=st.floats(min_value=0.0, max_value=100.0)),
           hnp.arrays(np.float64, 360,
                      elements=st.floats(min_value=0.0, max_value=100.0)))
    def test_suppression_never_amplifies(self, primary_power, companion_power):
        angles_grid = default_angle_grid(1.0)
        if np.max(primary_power) <= 0:
            primary_power = primary_power + 1e-3
        if np.max(companion_power) <= 0:
            companion_power = companion_power + 1e-3
        primary = AoASpectrum(angles_grid, primary_power, timestamp_s=0.0)
        companion = AoASpectrum(angles_grid, companion_power, timestamp_s=0.03)
        suppressed = MultipathSuppressor().suppress([primary, companion])
        assert np.all(suppressed.power <= primary.power + 1e-12)


class TestLikelihoodProperties:
    @settings(max_examples=15, deadline=None)
    @given(st.floats(min_value=1.0, max_value=9.0),
           st.floats(min_value=1.0, max_value=9.0))
    def test_likelihood_map_is_nonnegative_and_bounded(self, x, y):
        target = Point2D(x, y)
        angles_grid = default_angle_grid(2.0)
        spectra = []
        for ap_position in (Point2D(0.0, 0.0), Point2D(10.0, 0.0)):
            bearing = np.degrees(np.arctan2(target.y - ap_position.y,
                                            target.x - ap_position.x)) % 360
            distance = np.minimum(np.abs(angles_grid - bearing),
                                  360 - np.abs(angles_grid - bearing))
            power = np.exp(-0.5 * (distance / 5.0) ** 2) + 1e-5
            spectra.append(AoASpectrum(angles_grid, power, ap_position=ap_position))
        heatmap = synthesize_likelihood(spectra, (0, 0, 10, 10), resolution_m=0.5)
        assert np.all(heatmap.values >= 0.0)
        assert np.all(heatmap.values <= 1.0 + 1e-9)
        assert heatmap.peak_position().distance_to(target) < 1.5
