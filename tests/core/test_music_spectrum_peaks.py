"""Tests for MUSIC / beamformer spectra, the spectrum container and peaks."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.array import ArrayGeometry, ArrayReceiver, DeployedArray
from repro.channel import MultipathChannel
from repro.core import (
    AoASpectrum,
    bartlett_spectrum,
    bartlett_spectrum_many,
    capon_spectrum,
    capon_spectrum_many,
    default_angle_grid,
    find_peaks,
    match_peak,
    music_spectrum,
    music_spectrum_many,
    peak_regions,
    sample_covariance,
    smoothed_covariance,
)
from repro.errors import EstimationError
from repro.geometry import Point2D


def _covariance_for(bearings, amplitudes, antennas=8, snr_db=30.0, num=200, seed=0,
                    smoothing=1):
    geometry = ArrayGeometry.uniform_linear(antennas)
    array = DeployedArray(geometry)
    channel = MultipathChannel.from_bearings(bearings, amplitudes)
    receiver = ArrayReceiver(array, apply_phase_offsets=False)
    snapshots = receiver.capture(channel, num_snapshots=num, snr_db=snr_db,
                                 rng=np.random.default_rng(seed)).samples
    if smoothing > 1:
        return smoothed_covariance(snapshots, smoothing), geometry.subarray(
            list(range(antennas - smoothing + 1)))
    return sample_covariance(snapshots), geometry


incidence = st.floats(min_value=15.0, max_value=165.0,
                      allow_nan=False, allow_infinity=False)


class TestEstimators:
    @settings(max_examples=15, deadline=None)
    @given(incidence)
    def test_music_peak_at_true_bearing_single_source(self, bearing):
        covariance, geometry = _covariance_for([bearing], [1.0])
        angles = default_angle_grid(1.0, full_circle=False)
        power = music_spectrum(covariance, geometry, angles, num_sources=1)
        peak_angle = angles[int(np.argmax(power))]
        assert abs(peak_angle - bearing) <= 2.0

    def test_music_resolves_coherent_sources_with_smoothing(self):
        covariance, geometry = _covariance_for(
            [60.0, 110.0], [1.0, 0.9 * np.exp(1.1j)], smoothing=2)
        angles = default_angle_grid(1.0, full_circle=False)
        power = music_spectrum(covariance, geometry, angles)
        top_angles = angles[np.argsort(power)[-8:]]
        assert any(abs(a - 60.0) <= 4.0 for a in top_angles)
        assert any(abs(a - 110.0) <= 4.0 for a in top_angles)

    def test_bartlett_and_capon_peak_at_true_bearing(self):
        covariance, geometry = _covariance_for([75.0], [1.0])
        angles = default_angle_grid(1.0, full_circle=False)
        for estimator in (bartlett_spectrum, capon_spectrum):
            power = estimator(covariance, geometry, angles)
            assert abs(angles[int(np.argmax(power))] - 75.0) <= 3.0

    def test_music_sharper_than_bartlett(self):
        covariance, geometry = _covariance_for([75.0], [1.0])
        angles = default_angle_grid(1.0, full_circle=False)
        music = music_spectrum(covariance, geometry, angles, num_sources=1)
        bartlett = bartlett_spectrum(covariance, geometry, angles)
        def lobe_width(power):
            half = np.max(power) / 2
            return int(np.sum(power > half))
        assert lobe_width(music) < lobe_width(bartlett)

    def test_dimension_mismatch_rejected(self):
        geometry = ArrayGeometry.uniform_linear(8)
        with pytest.raises(EstimationError):
            music_spectrum(np.eye(4), geometry, default_angle_grid(1.0, False))

    def test_capon_solve_matches_explicit_inverse(self):
        # The solve-based Capon quadratic form must reproduce the explicit
        # R^-1 evaluation (the pre-optimization reference) to numerical
        # precision, and stay exactly reciprocal-positive.
        covariance, geometry = _covariance_for([75.0, 130.0],
                                               [1.0, 0.5 * np.exp(0.3j)])
        angles = default_angle_grid(1.0, full_circle=False)
        power = capon_spectrum(covariance, geometry, angles)
        num_antennas = covariance.shape[0]
        loading = 1e-3 * float(np.real(np.trace(covariance))) / num_antennas
        regularized = covariance + loading * np.eye(num_antennas)
        inverse = np.linalg.inv(regularized)  # repro-lint: disable=RPR002 -- reference cross-check that the production solve() path matches explicit inversion
        steering = geometry.steering_matrix(angles)
        quadratic = np.real(np.einsum("mk,mn,nk->k", steering.conj(),
                                      inverse, steering))
        reference = 1.0 / np.maximum(quadratic, 1e-12)
        assert np.allclose(power, reference, rtol=1e-9, atol=1e-12)
        assert np.all(power > 0)


class TestStackedEstimators:
    """The *_many estimators must match the serial calls bit for bit."""

    def _covariance_stack(self, num_frames=5, seed=2):
        rng = np.random.default_rng(seed)
        frames = []
        for _ in range(num_frames):
            bearings = [float(rng.uniform(15.0, 165.0)),
                        float(rng.uniform(15.0, 165.0))]
            covariance, geometry = _covariance_for(
                bearings, [1.0, 0.6 * np.exp(0.8j)],
                seed=int(rng.integers(1 << 30)), num=20, snr_db=12.0)
            frames.append(covariance)
        return np.stack(frames), geometry

    def test_music_many_matches_serial_bitwise(self):
        covariances, geometry = self._covariance_stack()
        angles = default_angle_grid(1.0, full_circle=False)
        batched = music_spectrum_many(covariances, geometry, angles)
        for frame in range(covariances.shape[0]):
            assert np.array_equal(batched[frame],
                                  music_spectrum(covariances[frame], geometry,
                                                 angles))

    def test_music_many_forced_counts(self):
        covariances, geometry = self._covariance_stack(num_frames=4)
        angles = default_angle_grid(1.0, full_circle=False)
        batched = music_spectrum_many(covariances, geometry, angles,
                                      num_sources=[1, 2, 7, 3])
        for frame, forced in enumerate([1, 2, 7, 3]):
            assert np.array_equal(
                batched[frame],
                music_spectrum(covariances[frame], geometry, angles,
                               num_sources=forced))

    def test_bartlett_and_capon_many_match_serial_bitwise(self):
        covariances, geometry = self._covariance_stack()
        angles = default_angle_grid(1.0, full_circle=False)
        for serial, batched in ((bartlett_spectrum, bartlett_spectrum_many),
                                (capon_spectrum, capon_spectrum_many)):
            stacked = batched(covariances, geometry, angles)
            for frame in range(covariances.shape[0]):
                assert np.array_equal(stacked[frame],
                                      serial(covariances[frame], geometry,
                                             angles))

    def test_stack_dimension_mismatch_rejected(self):
        geometry = ArrayGeometry.uniform_linear(8)
        angles = default_angle_grid(1.0, full_circle=False)
        with pytest.raises(EstimationError):
            music_spectrum_many(np.zeros((2, 4, 4)), geometry, angles)
        with pytest.raises(EstimationError):
            bartlett_spectrum_many(np.zeros((4, 4)), geometry, angles)


class TestAoASpectrum:
    def test_grid_validation(self):
        with pytest.raises(EstimationError):
            default_angle_grid(7.0)
        with pytest.raises(EstimationError):
            AoASpectrum(np.arange(4.0), np.array([1.0, -1.0, 0.0, 0.0]))

    @pytest.mark.parametrize("resolution_deg", [0.1, 0.3, 0.75, 0.9, 1.0, 2.0])
    def test_half_circle_grid_seam_is_exact(self, resolution_deg):
        # Regression: the old ``np.arange(0, 180 + res/2, res)`` endpoint
        # construction let float accumulation drop or duplicate the 180
        # degree seam point for resolutions whose reciprocal is inexact
        # (0.3, 0.9, ...).  The grid is now built on its exact point count.
        grid = default_angle_grid(resolution_deg, full_circle=False)
        expected_points = int(round(180.0 / resolution_deg)) + 1
        assert grid.shape[0] == expected_points
        assert grid[0] == 0.0
        assert grid[-1] == 180.0  # bitwise exact, not approx
        assert np.all(np.diff(grid) > 0)
        # The half grid must mirror cleanly onto the full circle.
        spectrum = AoASpectrum.from_half_spectrum(
            grid, np.ones_like(grid))
        assert spectrum.angles_deg.shape[0] == 2 * (expected_points - 1)

    @pytest.mark.parametrize("resolution_deg", [0.3, 0.9, 1.0, 2.0])
    def test_full_circle_grid_excludes_360_exactly(self, resolution_deg):
        grid = default_angle_grid(resolution_deg, full_circle=True)
        assert grid.shape[0] == int(round(360.0 / resolution_deg))
        assert grid[0] == 0.0
        assert grid[-1] < 360.0
        assert np.all(np.diff(grid) > 0)

    @pytest.mark.parametrize("resolution_deg", [0.1, 0.3, 0.75, 0.9])
    def test_mirrored_grid_matches_default_full_circle_exactly(
            self, resolution_deg):
        # Regression: from_half_spectrum built the full circle with
        # ``np.arange(0.0, 360.0, resolution)`` -- the float-accumulation
        # seam bug default_angle_grid was already cured of.  For
        # resolutions like 0.3 the accumulated points drift off the exact
        # grid (the mirror seam landed on 180.00000000000003 instead of
        # 180.0).  The mirrored grid must now equal the canonical
        # full-circle grid bit for bit.
        half = default_angle_grid(resolution_deg, full_circle=False)
        spectrum = AoASpectrum.from_half_spectrum(half, np.ones_like(half))
        full = default_angle_grid(resolution_deg, full_circle=True)
        assert np.array_equal(spectrum.angles_deg, full)
        seam = spectrum.angles_deg.shape[0] // 2
        assert spectrum.angles_deg[seam] == 180.0  # bitwise exact

    def test_from_half_spectrum_mirrors_power_exactly(self):
        half = default_angle_grid(0.3, full_circle=False)
        power = np.exp(-0.5 * ((half - 60.0) / 5.0) ** 2)
        spectrum = AoASpectrum.from_half_spectrum(half, power)
        half_points = half.shape[0]
        assert np.array_equal(spectrum.power[:half_points], power)
        assert np.array_equal(spectrum.power[half_points:],
                              power[1:-1][::-1])

    def test_mirror_from_half_spectrum(self):
        angles = default_angle_grid(1.0, full_circle=False)
        power = np.exp(-0.5 * ((angles - 60.0) / 5.0) ** 2)
        spectrum = AoASpectrum.from_half_spectrum(angles, power)
        assert spectrum.angles_deg.shape == (360,)
        assert spectrum.power_at_local(300.0)[0] == pytest.approx(
            spectrum.power_at_local(60.0)[0], rel=1e-6)

    def test_power_lookup_interpolates_and_wraps(self):
        angles = default_angle_grid(1.0)
        power = np.zeros_like(angles)
        power[0] = 1.0
        spectrum = AoASpectrum(angles, power)
        assert spectrum.power_at_local(359.5)[0] == pytest.approx(0.5)
        assert spectrum.power_at_local(0.5)[0] == pytest.approx(0.5)

    def test_global_lookup_uses_orientation(self):
        angles = default_angle_grid(1.0)
        power = np.zeros_like(angles)
        power[90] = 1.0  # local 90 degrees
        spectrum = AoASpectrum(angles, power, ap_orientation_deg=30.0)
        assert spectrum.power_at_global(120.0)[0] == pytest.approx(1.0)

    def test_power_towards_position(self):
        angles = default_angle_grid(1.0)
        power = np.ones_like(angles)
        power[45] = 10.0
        spectrum = AoASpectrum(angles, power, ap_position=Point2D(0.0, 0.0))
        towards_peak = spectrum.power_towards(Point2D(1.0, 1.0))
        assert towards_peak == pytest.approx(10.0)
        assert spectrum.power_towards(Point2D(0.0, 0.0)) == 0.0

    def test_normalized_and_scaled(self):
        angles = default_angle_grid(1.0)
        spectrum = AoASpectrum(angles, np.linspace(0, 2, len(angles)))
        assert spectrum.normalized().max_power == pytest.approx(1.0)
        assert spectrum.scaled(2.0).max_power == pytest.approx(4.0)
        with pytest.raises(EstimationError):
            spectrum.scaled(-1.0)

    def test_half_plane_power_and_suppression(self):
        angles = default_angle_grid(1.0)
        power = np.ones_like(angles)
        spectrum = AoASpectrum(angles, power)
        upper, lower = spectrum.half_plane_power()
        assert upper == pytest.approx(lower)
        suppressed = spectrum.suppress_half_plane(suppress_lower=True)
        upper2, lower2 = suppressed.half_plane_power()
        assert lower2 == pytest.approx(0.0)
        assert upper2 == pytest.approx(upper)


class TestPeaks:
    def _gaussian_spectrum(self, centers, widths, heights):
        angles = default_angle_grid(1.0)
        power = np.zeros_like(angles)
        for center, width, height in zip(centers, widths, heights, strict=True):
            distance = np.minimum(np.abs(angles - center), 360 - np.abs(angles - center))
            power += height * np.exp(-0.5 * (distance / width) ** 2)
        return AoASpectrum(angles, power)

    def test_finds_all_major_peaks(self):
        spectrum = self._gaussian_spectrum([50, 150, 260], [4, 5, 6], [1.0, 0.7, 0.4])
        peaks = find_peaks(spectrum, min_relative_height=0.1)
        found = sorted(round(p.angle_deg) for p in peaks)
        assert found == [50, 150, 260]
        # Strongest first.
        assert find_peaks(spectrum)[0].angle_deg == pytest.approx(50.0)

    def test_height_floor_filters_small_peaks(self):
        spectrum = self._gaussian_spectrum([50, 200], [4, 4], [1.0, 0.05])
        peaks = find_peaks(spectrum, min_relative_height=0.1)
        assert len(peaks) == 1

    def test_match_peak_tolerance(self):
        spectrum = self._gaussian_spectrum([50], [4], [1.0])
        peak = find_peaks(spectrum)[0]
        near = self._gaussian_spectrum([53], [4], [1.0])
        far = self._gaussian_spectrum([60], [4], [1.0])
        assert match_peak(peak, find_peaks(near), tolerance_deg=5.0) is not None
        assert match_peak(peak, find_peaks(far), tolerance_deg=5.0) is None

    def test_peak_regions_cover_the_lobe(self):
        spectrum = self._gaussian_spectrum([100], [8], [1.0])
        peak = find_peaks(spectrum)[0]
        mask = peak_regions(spectrum, peak)
        assert mask[peak.index]
        assert 10 < int(np.sum(mask)) < 120

    def test_empty_spectrum_has_no_peaks(self):
        angles = default_angle_grid(1.0)
        spectrum = AoASpectrum(angles, np.zeros_like(angles))
        assert find_peaks(spectrum) == []

    def test_match_peak_across_wraparound_seam(self):
        # 358 and 2 degrees are 4 degrees apart across the 0/360 seam of
        # the circular grid, well inside the paper's 5-degree tolerance.
        peak = find_peaks(self._gaussian_spectrum([358], [4], [1.0]))[0]
        near = find_peaks(self._gaussian_spectrum([2], [4], [1.0]))
        far = find_peaks(self._gaussian_spectrum([8], [4], [1.0]))
        assert match_peak(peak, near, tolerance_deg=5.0) is not None
        assert match_peak(peak, far, tolerance_deg=5.0) is None

    def test_peak_on_grid_edge_found_once_with_wrapping_lobe(self):
        spectrum = self._gaussian_spectrum([0], [6], [1.0])
        peaks = find_peaks(spectrum, min_relative_height=0.1)
        assert len(peaks) == 1
        assert peaks[0].index == 0
        mask = peak_regions(spectrum, peaks[0])
        # The lobe extends circularly to both sides of the seam.
        assert mask[0] and mask[1] and mask[-1]

    def test_plateau_peak_resolved_to_single_left_edge(self):
        angles = default_angle_grid(1.0)
        power = np.full_like(angles, 0.1)
        power[100:105] = 1.0
        peaks = find_peaks(AoASpectrum(angles, power))
        assert len(peaks) == 1
        assert peaks[0].index == 100
        assert peaks[0].prominence == pytest.approx(0.9)

    def test_plateau_across_wraparound_seam_found_once(self):
        angles = default_angle_grid(1.0)
        power = np.full_like(angles, 0.1)
        power[358:] = 1.0
        power[:3] = 1.0
        peaks = find_peaks(AoASpectrum(angles, power))
        assert len(peaks) == 1
        assert peaks[0].index == 358
