"""Threaded stress tests for the shared LRU caches (``repro.core.cache``).

The service's thread-sharded execution drives :class:`SteeringCache`,
:class:`WindowCache` and :class:`BearingGridCache` from worker threads, so
their get/evict/clear sequences must hold up under real contention -- not
just under repro-lint's static RPR009 proof.  Each test hammers one cache
from many threads with a working set larger than ``max_entries`` (so
evictions race lookups and inserts race ``clear``), then asserts nothing
was lost, duplicated or corrupted: every returned entry is bit-for-bit the
expected value, no thread observed an exception, the stats counters add up
and the LRU never exceeds its bound.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.array.geometry import ArrayGeometry
from repro.core.cache import BearingGridCache, SteeringCache, WindowCache
from repro.geometry.vector import Point2D

NUM_THREADS = 8
ROUNDS_PER_THREAD = 40
BOUNDS = (0.0, 0.0, 8.0, 6.0)
RESOLUTION_M = 1.0


def _synced(barrier: threading.Barrier, worker, index: int):
    """Wait at the barrier, then run one worker (thread-pool entry point)."""
    barrier.wait()
    return worker(index)


def _hammer(worker, num_threads: int = NUM_THREADS) -> list:
    """Run ``worker(thread_index)`` across threads, starting them together.

    Re-raises the first worker exception (KeyError from a racing eviction,
    ValueError from a torn entry, ...) instead of burying it in a thread.
    """
    barrier = threading.Barrier(num_threads)
    with ThreadPoolExecutor(max_workers=num_threads) as pool:
        futures = [pool.submit(_synced, barrier, worker, index)
                   for index in range(num_threads)]
        return [future.result(timeout=60) for future in futures]


class TestSteeringCacheConcurrency:
    def test_concurrent_get_with_evictions(self):
        cache = SteeringCache(max_entries=3)
        geometries = [ArrayGeometry.uniform_linear(n) for n in (2, 3, 4, 5, 6)]
        angles = np.linspace(-90.0, 90.0, 37)
        expected = {
            geometry.num_elements: geometry.steering_matrix(angles, 0.0, 0.125)
            for geometry in geometries
        }

        def worker(index: int) -> int:
            checked = 0
            for round_index in range(ROUNDS_PER_THREAD):
                geometry = geometries[(index + round_index) % len(geometries)]
                steering = cache.get(geometry, angles, 0.125)
                assert not steering.flags.writeable
                np.testing.assert_array_equal(
                    steering, expected[geometry.num_elements])
                checked += 1
            return checked

        results = _hammer(worker)
        assert results == [ROUNDS_PER_THREAD] * NUM_THREADS
        assert len(cache) <= 3
        stats = cache.stats
        assert stats.hits + stats.misses == NUM_THREADS * ROUNDS_PER_THREAD
        assert stats.misses >= len(geometries)

    def test_concurrent_get_and_clear(self):
        cache = SteeringCache(max_entries=8)
        geometry = ArrayGeometry.uniform_linear(4)
        angles = np.linspace(0.0, 180.0, 19)
        expected = geometry.steering_matrix(angles, 0.0, 0.125)

        def worker(index: int) -> None:
            for _ in range(ROUNDS_PER_THREAD):
                if index == 0:
                    cache.clear()
                else:
                    np.testing.assert_array_equal(
                        cache.get(geometry, angles, 0.125), expected)

        _hammer(worker)
        assert len(cache) <= 8


class TestBearingGridCacheConcurrency:
    def test_concurrent_get_warm_evict(self):
        cache = BearingGridCache(max_entries=4)
        positions = [Point2D(float(x), float(x) / 2.0) for x in range(7)]
        expected = {}
        reference = BearingGridCache()
        for position in positions:
            expected[(position.x, position.y)] = np.array(
                reference.get(BOUNDS, RESOLUTION_M, position).bearings_deg)

        def worker(index: int) -> None:
            for round_index in range(ROUNDS_PER_THREAD):
                if round_index % 10 == index % 10:
                    # warm() races individual get()s and evictions.
                    cache.warm(BOUNDS, RESOLUTION_M, positions[:3])
                position = positions[(index + round_index) % len(positions)]
                grid = cache.get(BOUNDS, RESOLUTION_M, position)
                np.testing.assert_array_equal(
                    grid.bearings_deg, expected[(position.x, position.y)])
                assert grid.x_coords.shape[0] * grid.y_coords.shape[0] \
                    == grid.bearings_deg.shape[0]

        _hammer(worker)
        assert len(cache) <= 4
        stats = cache.stats
        warm_calls = sum(3 for index in range(NUM_THREADS)
                         for round_index in range(ROUNDS_PER_THREAD)
                         if round_index % 10 == index % 10)
        assert stats.hits + stats.misses \
            == NUM_THREADS * ROUNDS_PER_THREAD + warm_calls

    def test_warm_accepts_tuples_under_contention(self):
        cache = BearingGridCache(max_entries=16)

        def worker(index: int) -> int:
            return cache.warm(BOUNDS, RESOLUTION_M,
                              [(float(index), 1.0), (float(index), 2.0)])

        results = _hammer(worker)
        assert results == [2] * NUM_THREADS
        assert len(cache) == 2 * NUM_THREADS


class TestWindowCacheConcurrency:
    def test_racing_duplicate_computes_converge_to_one_entry(self):
        cache = WindowCache(max_entries=4)
        grids = [np.linspace(-90.0, 90.0, 19 + n) for n in range(6)]
        compute_calls = []

        def worker(index: int) -> None:
            for round_index in range(ROUNDS_PER_THREAD):
                angles = grids[(index + round_index) % len(grids)]

                def compute(angles=angles):
                    compute_calls.append(threading.get_ident())
                    return np.cos(np.radians(angles)) ** 2

                window = cache.get(angles, 30.0, compute)
                assert not window.flags.writeable
                np.testing.assert_array_equal(
                    window, np.cos(np.radians(angles)) ** 2)

        _hammer(worker)
        assert len(cache) <= 4
        # The compute runs outside the lock, so duplicates are allowed --
        # but a miss implies a compute, so there are at least as many
        # computes as misses and far fewer than total lookups.
        assert len(compute_calls) >= cache.stats.misses
        assert cache.stats.hits + cache.stats.misses \
            == NUM_THREADS * ROUNDS_PER_THREAD

    def test_len_is_safe_during_churn(self):
        cache = WindowCache(max_entries=2)
        grids = [np.linspace(0.0, 180.0, 11 + n) for n in range(5)]

        def worker(index: int) -> None:
            for round_index in range(ROUNDS_PER_THREAD):
                angles = grids[(index + round_index) % len(grids)]
                cache.get(angles, 20.0, lambda a=angles: np.ones_like(a))
                assert 0 <= len(cache) <= 2

        _hammer(worker)


@pytest.mark.parametrize("factory", [
    lambda: SteeringCache(max_entries=0),
    lambda: BearingGridCache(max_entries=-1),
    lambda: WindowCache(max_entries=0),
])
def test_invalid_capacity_is_rejected(factory):
    from repro.errors import EstimationError
    with pytest.raises(EstimationError):
        factory()
