"""Tests for the batched localization engine and the geometry caches."""

import numpy as np
import pytest

import repro.core.batch as batch_module
from repro.array import ArrayGeometry
from repro.core import (
    AoASpectrum,
    BatchLocalizer,
    BearingGridCache,
    LocalizerConfig,
    LocationEstimator,
    SteeringCache,
    clear_default_caches,
    count_distinct_sources,
    default_angle_grid,
    default_steering_cache,
    grid_axes,
    music_spectrum,
    synthesize_likelihood,
)
from repro.errors import EstimationError
from repro.geometry import Point2D, bearing_deg

BOUNDS = (0.0, 0.0, 12.0, 8.0)
AP_SITES = [
    (Point2D(0.5, 0.5), 30.0),
    (Point2D(11.5, 0.5), 120.0),
    (Point2D(6.0, 7.5), 250.0),
    (Point2D(0.5, 7.5), 0.0),
]


def _spectrum_towards(ap_position, target, orientation=0.0, width=4.0,
                      ap_id="", seed=None):
    """A synthetic spectrum peaking at the target's bearing from the AP."""
    angles = default_angle_grid(1.0)
    bearing = (bearing_deg(ap_position, target) - orientation) % 360.0
    distance = np.minimum(np.abs(angles - bearing), 360 - np.abs(angles - bearing))
    power = np.exp(-0.5 * (distance / width) ** 2) + 1e-4
    if seed is not None:
        power = power + 0.05 * np.random.default_rng(seed).random(angles.shape[0])
    return AoASpectrum(angles, power, ap_position=ap_position,
                       ap_orientation_deg=orientation, ap_id=ap_id)


def _client_spectra(target, seed, ap_ids=True, sites=None):
    sites = AP_SITES if sites is None else sites
    return [
        _spectrum_towards(position, target, orientation,
                          ap_id=f"ap{index}" if ap_ids else "",
                          seed=seed * 100 + index)
        for index, (position, orientation) in enumerate(sites)
    ]


class TestSteeringCache:
    def _geometry(self):
        return ArrayGeometry.uniform_linear(4)

    def test_hit_and_miss_accounting(self):
        cache = SteeringCache()
        geometry = self._geometry()
        angles = default_angle_grid(2.0, full_circle=False)
        first = cache.get(geometry, angles, 0.125)
        assert cache.stats.misses == 1 and cache.stats.hits == 0
        second = cache.get(geometry, angles, 0.125)
        assert cache.stats.misses == 1 and cache.stats.hits == 1
        assert second is first
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_entries_match_direct_computation_and_are_readonly(self):
        cache = SteeringCache()
        geometry = self._geometry()
        angles = default_angle_grid(2.0, full_circle=False)
        cached = cache.get(geometry, angles, 0.125, elevation_deg=10.0)
        direct = geometry.steering_matrix(angles, 10.0, 0.125)
        np.testing.assert_array_equal(cached, direct)
        with pytest.raises(ValueError):
            cached[0, 0] = 0.0

    def test_key_distinguishes_geometry_grid_wavelength_elevation(self):
        cache = SteeringCache()
        geometry = self._geometry()
        angles = default_angle_grid(2.0, full_circle=False)
        cache.get(geometry, angles, 0.125)
        cache.get(ArrayGeometry.uniform_linear(6), angles, 0.125)
        cache.get(geometry, default_angle_grid(1.0, full_circle=False), 0.125)
        cache.get(geometry, angles, 0.0612)
        cache.get(geometry, angles, 0.125, elevation_deg=5.0)
        assert cache.stats.misses == 5 and cache.stats.hits == 0
        assert len(cache) == 5

    def test_lru_eviction(self):
        cache = SteeringCache(max_entries=2)
        geometry = self._geometry()
        angles = default_angle_grid(2.0, full_circle=False)
        cache.get(geometry, angles, 0.125)
        cache.get(geometry, angles, 0.0612)
        cache.get(geometry, angles, 0.25)          # evicts the 0.125 entry
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        cache.get(geometry, angles, 0.125)         # miss again
        assert cache.stats.misses == 4

    def test_music_spectrum_populates_default_cache(self):
        clear_default_caches()
        cache = default_steering_cache()
        cache.stats.reset()
        geometry = self._geometry()
        angles = default_angle_grid(2.0, full_circle=False)
        rng = np.random.default_rng(3)
        samples = (rng.normal(size=(4, 32)) + 1j * rng.normal(size=(4, 32)))
        covariance = samples @ samples.conj().T / 32
        music_spectrum(covariance, geometry, angles, num_sources=1)
        assert cache.stats.misses >= 1
        before_hits = cache.stats.hits
        music_spectrum(covariance, geometry, angles, num_sources=1)
        assert cache.stats.hits > before_hits


class TestBearingGridCache:
    def test_hit_and_miss_accounting(self):
        cache = BearingGridCache()
        first = cache.get(BOUNDS, 0.5, Point2D(1.0, 1.0))
        second = cache.get(BOUNDS, 0.5, Point2D(1.0, 1.0))
        assert second is first
        assert cache.stats.misses == 1 and cache.stats.hits == 1
        cache.get(BOUNDS, 0.5, Point2D(2.0, 1.0))
        cache.get(BOUNDS, 0.25, Point2D(1.0, 1.0))
        assert cache.stats.misses == 3

    def test_bearings_match_pointwise_computation(self):
        cache = BearingGridCache()
        ap = Point2D(3.0, 2.0)
        grid = cache.get(BOUNDS, 1.0, ap)
        x_coords, y_coords = grid_axes(BOUNDS, 1.0)
        np.testing.assert_array_equal(grid.x_coords, x_coords)
        np.testing.assert_array_equal(grid.y_coords, y_coords)
        bearings = grid.bearings_deg.reshape(grid.shape)
        for row in range(0, grid.shape[0], 3):
            for column in range(0, grid.shape[1], 3):
                cell = Point2D(float(x_coords[column]), float(y_coords[row]))
                if cell.distance_to(ap) < 1e-9:
                    continue
                assert bearings[row, column] == pytest.approx(
                    bearing_deg(ap, cell), abs=1e-9)

    def test_entries_are_readonly(self):
        cache = BearingGridCache()
        grid = cache.get(BOUNDS, 1.0, Point2D(0.0, 0.0))
        with pytest.raises(ValueError):
            grid.bearings_deg[0] = 0.0

    def test_synthesize_likelihood_uses_supplied_cache(self):
        cache = BearingGridCache()
        target = Point2D(6.0, 4.0)
        spectra = _client_spectra(target, seed=1)
        synthesize_likelihood(spectra, BOUNDS, 0.5, bearing_cache=cache)
        assert cache.stats.misses == len(spectra)
        synthesize_likelihood(spectra, BOUNDS, 0.5, bearing_cache=cache)
        assert cache.stats.hits == len(spectra)


class TestBatchSingleParity:
    def _targets(self, count):
        rng = np.random.default_rng(77)
        return [Point2D(rng.uniform(1.0, 11.0), rng.uniform(1.0, 7.0))
                for _ in range(count)]

    @pytest.mark.parametrize("refine", [True, False])
    def test_batch_matches_sequential(self, refine):
        config = LocalizerConfig(grid_resolution_m=0.5,
                                 refine_with_hill_climbing=refine)
        estimator = LocationEstimator(BOUNDS, config)
        batch = {f"c{i}": _client_spectra(target, seed=i)
                 for i, target in enumerate(self._targets(8))}
        sequential = {key: estimator.estimate(spectra, key)
                      for key, spectra in batch.items()}
        batched = estimator.estimate_batch(batch)
        for key in batch:
            assert batched[key].position.distance_to(
                sequential[key].position) <= 1e-9
            assert batched[key].likelihood == pytest.approx(
                sequential[key].likelihood, rel=1e-12)
            assert batched[key].num_aps == sequential[key].num_aps
            assert batched[key].client_id == key

    def test_ragged_batch_matches_sequential(self):
        """Clients heard by different AP subsets (and orders) still agree."""
        estimator = LocationEstimator(
            BOUNDS, LocalizerConfig(grid_resolution_m=0.5))
        targets = self._targets(4)
        batch = {
            "c0": _client_spectra(targets[0], seed=0),
            "c1": _client_spectra(targets[1], seed=1,
                                  sites=AP_SITES[:3]),
            "c2": _client_spectra(targets[2], seed=2,
                                  sites=list(reversed(AP_SITES))),
            "c3": _client_spectra(targets[3], seed=3,
                                  sites=AP_SITES[1:]),
        }
        sequential = {key: estimator.estimate(spectra, key)
                      for key, spectra in batch.items()}
        batched = estimator.estimate_batch(batch)
        for key in batch:
            assert batched[key].position.distance_to(
                sequential[key].position) <= 1e-9

    def test_gather_fallback_matches_sparse_path(self, monkeypatch):
        """Without SciPy the chunked-gather fold returns identical fixes."""
        config = LocalizerConfig(grid_resolution_m=0.5,
                                 refine_with_hill_climbing=False)
        batch = {f"c{i}": _client_spectra(target, seed=i)
                 for i, target in enumerate(self._targets(6))}
        with_sparse = BatchLocalizer(BOUNDS, config).estimate_batch(batch)
        monkeypatch.setattr(batch_module, "_sparse", None)
        without_sparse = BatchLocalizer(BOUNDS, config).estimate_batch(batch)
        for key in batch:
            assert without_sparse[key].position.distance_to(
                with_sparse[key].position) == 0.0
            assert without_sparse[key].likelihood == with_sparse[key].likelihood

    def test_keep_heatmap_attaches_per_client_maps(self):
        config = LocalizerConfig(grid_resolution_m=0.5, keep_heatmap=True,
                                 refine_with_hill_climbing=False)
        estimator = LocationEstimator(BOUNDS, config)
        batch = {f"c{i}": _client_spectra(target, seed=i)
                 for i, target in enumerate(self._targets(3))}
        batched = estimator.estimate_batch(batch)
        for key, spectra in batch.items():
            heatmap = batched[key].heatmap
            assert heatmap is not None
            reference = synthesize_likelihood(
                spectra, BOUNDS, 0.5, floor=config.spectrum_floor)
            np.testing.assert_array_equal(heatmap.values, reference.values)

    def test_empty_batch_and_empty_client_are_rejected(self):
        estimator = LocationEstimator(BOUNDS, LocalizerConfig())
        with pytest.raises(EstimationError):
            estimator.estimate_batch({})
        with pytest.raises(EstimationError):
            estimator.estimate_batch({"c": []})


class TestCountDistinctSources:
    def test_mixed_named_and_anonymous_spectra(self):
        """The seed undercounted when only some spectra carried an ap_id."""
        target = Point2D(6.0, 4.0)
        named = _spectrum_towards(AP_SITES[0][0], target, ap_id="ap0")
        other = _spectrum_towards(AP_SITES[1][0], target, ap_id="ap1")
        anonymous = _spectrum_towards(AP_SITES[2][0], target)
        assert count_distinct_sources([named, other, anonymous]) == 3
        assert count_distinct_sources([named, named]) == 1
        assert count_distinct_sources([anonymous, anonymous]) == 2
        assert count_distinct_sources([]) == 0

    def test_estimate_num_aps_counts_mixed_sources(self):
        estimator = LocationEstimator(
            BOUNDS, LocalizerConfig(grid_resolution_m=0.5,
                                    refine_with_hill_climbing=False))
        target = Point2D(6.0, 4.0)
        spectra = [
            _spectrum_towards(AP_SITES[0][0], target, ap_id="ap0"),
            _spectrum_towards(AP_SITES[1][0], target),    # anonymous
            _spectrum_towards(AP_SITES[2][0], target),    # anonymous
        ]
        assert estimator.estimate(spectra).num_aps == 3
