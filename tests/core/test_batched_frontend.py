"""Tests for the batched Section 2.3 frontend (SpectrumComputer.compute_many).

House rule for every vectorized path in this repo: the batched frontend must
be *bit-for-bit* identical to the serial per-frame reference, across every
estimator method, smoothing setting, forward-backward averaging, forced and
automatic source counts, and with symmetry removal on or off.  These tests
randomize the capture conditions and assert exact array equality.
"""

import numpy as np
import pytest

from repro.ap import APConfig, ArrayTrackAP
from repro.channel import MultipathChannel
from repro.core import SpectrumComputer, SpectrumConfig
from repro.errors import EstimationError
from repro.geometry import Point2D


def _ap(spectrum_config, use_symmetry=False, num_antennas=8, seed=3,
        apply_phase_offsets=False, buffer_capacity=64):
    return ArrayTrackAP(
        "ap-1", Point2D(0.0, 0.0), orientation_deg=30.0,
        config=APConfig(spectrum=spectrum_config,
                        num_antennas=num_antennas,
                        use_symmetry_antenna=use_symmetry,
                        apply_phase_offsets=apply_phase_offsets,
                        buffer_capacity=buffer_capacity),
        rng=np.random.default_rng(seed))


def _capture_frames(ap, num_frames, rng, client_id="client", snr_db=18.0,
                    num_snapshots=None):
    """Capture randomized two-path frames and return the buffer entries."""
    entries = []
    for index in range(num_frames):
        bearings = [float(rng.uniform(10.0, 170.0)),
                    float(rng.uniform(10.0, 350.0))]
        gains = [1.0,
                 float(rng.uniform(0.2, 0.9)) * np.exp(1j * rng.uniform(0, 6))]
        channel = MultipathChannel.from_bearings(bearings, gains,
                                                 client_id=client_id)
        entries.append(ap.overhear(channel, timestamp_s=0.01 * index,
                                   snr_db=snr_db, rng=rng,
                                   num_snapshots=num_snapshots))
    return entries


def _assert_spectra_equal(serial, batched):
    assert len(serial) == len(batched)
    for reference, candidate in zip(serial, batched, strict=True):
        assert np.array_equal(reference.angles_deg, candidate.angles_deg)
        assert np.array_equal(reference.power, candidate.power)
        assert reference.client_id == candidate.client_id
        assert reference.ap_id == candidate.ap_id
        assert reference.timestamp_s == candidate.timestamp_s
        assert reference.ap_orientation_deg == candidate.ap_orientation_deg


class TestComputeManyEquality:
    """compute_many == per-frame compute, bitwise, across the config space."""

    @pytest.mark.parametrize("method", ["music", "bartlett", "capon"])
    @pytest.mark.parametrize("smoothing_groups", [1, 2])
    def test_methods_and_smoothing(self, method, smoothing_groups):
        config = SpectrumConfig(method=method, smoothing_groups=smoothing_groups,
                                angle_resolution_deg=1.0)
        ap = _ap(config)
        rng = np.random.default_rng(17)
        entries = _capture_frames(ap, 7, rng)
        computer = ap._spectrum_computer
        snapshots = [entry.snapshots for entry in entries]
        serial = [computer.compute(item, ap.array, ap.linear_indices)
                  for item in snapshots]
        batched = computer.compute_many(snapshots, ap.array, ap.linear_indices)
        _assert_spectra_equal(serial, batched)

    @pytest.mark.parametrize("forward_backward", [False, True])
    @pytest.mark.parametrize("num_sources", [None, 1, 3, 7])
    def test_forward_backward_and_source_counts(self, forward_backward,
                                                num_sources):
        config = SpectrumConfig(smoothing_groups=2,
                                forward_backward=forward_backward,
                                num_sources=num_sources,
                                angle_resolution_deg=1.0)
        ap = _ap(config)
        rng = np.random.default_rng(23)
        entries = _capture_frames(ap, 6, rng)
        computer = ap._spectrum_computer
        snapshots = [entry.snapshots for entry in entries]
        serial = [computer.compute(item, ap.array, ap.linear_indices)
                  for item in snapshots]
        batched = computer.compute_many(snapshots, ap.array, ap.linear_indices)
        _assert_spectra_equal(serial, batched)

    @pytest.mark.parametrize("apply_weighting", [False, True])
    def test_weighting_toggle(self, apply_weighting):
        config = SpectrumConfig(apply_weighting=apply_weighting,
                                angle_resolution_deg=1.0)
        ap = _ap(config)
        rng = np.random.default_rng(5)
        snapshots = [entry.snapshots
                     for entry in _capture_frames(ap, 5, rng)]
        computer = ap._spectrum_computer
        serial = [computer.compute(item, ap.array, ap.linear_indices)
                  for item in snapshots]
        batched = computer.compute_many(snapshots, ap.array, ap.linear_indices)
        _assert_spectra_equal(serial, batched)

    def test_fractional_resolution_0_3(self):
        # The 0.3-degree grid is the float-accumulation stress case the
        # from_half_spectrum seam fix targets; the batched grid must still
        # match the serial one bitwise.
        config = SpectrumConfig(angle_resolution_deg=0.3)
        ap = _ap(config)
        rng = np.random.default_rng(31)
        snapshots = [entry.snapshots for entry in _capture_frames(ap, 3, rng)]
        computer = ap._spectrum_computer
        serial = [computer.compute(item, ap.array, ap.linear_indices)
                  for item in snapshots]
        batched = computer.compute_many(snapshots, ap.array, ap.linear_indices)
        _assert_spectra_equal(serial, batched)

    def test_low_snr_noise_dominated_frames(self):
        # Noise-dominated captures exercise the automatic source-count rule
        # away from the easy D = 1 regime (frames land in different D
        # groups within one batch).
        config = SpectrumConfig(angle_resolution_deg=1.0)
        ap = _ap(config)
        rng = np.random.default_rng(41)
        snapshots = [entry.snapshots
                     for entry in _capture_frames(ap, 10, rng, snr_db=-3.0)]
        computer = ap._spectrum_computer
        serial = [computer.compute(item, ap.array, ap.linear_indices)
                  for item in snapshots]
        batched = computer.compute_many(snapshots, ap.array, ap.linear_indices)
        _assert_spectra_equal(serial, batched)


class TestComputeManyWithSymmetry:
    @pytest.mark.parametrize("method", ["music", "bartlett"])
    def test_symmetry_resolution_matches_serial(self, method):
        config = SpectrumConfig(method=method, angle_resolution_deg=1.0)
        ap = _ap(config, use_symmetry=True)
        rng = np.random.default_rng(13)
        snapshots = [entry.snapshots for entry in _capture_frames(ap, 6, rng)]
        computer = ap._spectrum_computer
        serial = [computer.compute_with_symmetry(item, ap.array,
                                                 ap.linear_indices)
                  for item in snapshots]
        batched = computer.compute_many_with_symmetry(snapshots, ap.array,
                                                      ap.linear_indices)
        _assert_spectra_equal(serial, batched)

    def test_symmetry_with_calibrated_phase_offsets(self):
        config = SpectrumConfig(angle_resolution_deg=1.0)
        ap = _ap(config, use_symmetry=True, apply_phase_offsets=True, seed=29)
        rng = np.random.default_rng(29)
        entries = _capture_frames(ap, 5, rng)
        serial = [ap.compute_spectrum(entry) for entry in entries]
        batched = ap.compute_spectra(entries)
        _assert_spectra_equal(serial, batched)


class TestSerialReferenceGate:
    def test_disabled_frontend_runs_serial_path(self):
        config = SpectrumConfig(angle_resolution_deg=1.0,
                                vectorized_frontend=False)
        ap = _ap(config)
        rng = np.random.default_rng(7)
        snapshots = [entry.snapshots for entry in _capture_frames(ap, 4, rng)]
        computer = ap._spectrum_computer
        serial = [computer.compute(item, ap.array, ap.linear_indices)
                  for item in snapshots]
        batched = computer.compute_many(snapshots, ap.array, ap.linear_indices)
        _assert_spectra_equal(serial, batched)

    def test_vectorized_frontend_must_be_boolean(self):
        with pytest.raises(EstimationError):
            SpectrumConfig(vectorized_frontend="yes")


class TestBatchValidation:
    def test_empty_batch(self):
        computer = SpectrumComputer(SpectrumConfig(angle_resolution_deg=1.0))
        ap = _ap(SpectrumConfig(angle_resolution_deg=1.0))
        assert computer.compute_many([], ap.array) == []
        assert computer.compute_many_with_symmetry([], ap.array, [0, 1]) == []

    def test_mixed_shapes_rejected(self):
        config = SpectrumConfig(angle_resolution_deg=1.0)
        ap = _ap(config)
        rng = np.random.default_rng(11)
        short = _capture_frames(ap, 1, rng, num_snapshots=5)
        long = _capture_frames(ap, 1, rng, num_snapshots=10)
        computer = ap._spectrum_computer
        with pytest.raises(EstimationError):
            computer.compute_many(
                [entry.snapshots for entry in short + long],
                ap.array, ap.linear_indices)

    def test_non_linear_selection_rejected(self):
        ap = _ap(SpectrumConfig(angle_resolution_deg=1.0), use_symmetry=True)
        rng = np.random.default_rng(19)
        snapshots = [entry.snapshots for entry in _capture_frames(ap, 2, rng)]
        with pytest.raises(EstimationError):
            # Rows 0..8 include the off-row symmetry antenna.
            ap._spectrum_computer.compute_many(snapshots, ap.array, None)


class TestAccessPointBatching:
    def test_compute_spectra_matches_compute_spectrum(self):
        ap = _ap(SpectrumConfig(angle_resolution_deg=1.0), use_symmetry=True)
        rng = np.random.default_rng(37)
        entries = _capture_frames(ap, 6, rng)
        serial = [ap.compute_spectrum(entry) for entry in entries]
        _assert_spectra_equal(serial, ap.compute_spectra(entries))
        assert ap.compute_spectra([]) == []

    def test_compute_spectra_groups_mixed_snapshot_shapes(self):
        # A Figure 19-style buffer holding captures of different sample
        # counts: the batch groups by shape and returns input order.
        ap = _ap(SpectrumConfig(angle_resolution_deg=1.0))
        rng = np.random.default_rng(43)
        entries = []
        for count in (10, 4, 10, 4, 7):
            entries.extend(_capture_frames(ap, 1, rng, num_snapshots=count))
        serial = [ap.compute_spectrum(entry) for entry in entries]
        _assert_spectra_equal(serial, ap.compute_spectra(entries))

    def test_spectra_for_client_uses_batched_path(self):
        ap = _ap(SpectrumConfig(angle_resolution_deg=1.0), use_symmetry=True)
        rng = np.random.default_rng(47)
        _capture_frames(ap, 4, rng, client_id="alice")
        _capture_frames(ap, 3, rng, client_id="bob")
        serial = [ap.compute_spectrum(entry)
                  for entry in ap.buffer.entries_for_client("alice")]
        _assert_spectra_equal(serial, ap.spectra_for_client("alice"))

    def test_spectra_for_clients_splits_one_batch_per_client(self):
        ap = _ap(SpectrumConfig(angle_resolution_deg=1.0))
        rng = np.random.default_rng(53)
        _capture_frames(ap, 3, rng, client_id="alice")
        _capture_frames(ap, 2, rng, client_id="bob")
        result = ap.spectra_for_clients(["alice", "bob", "ghost"])
        assert sorted(result) == ["alice", "bob"]
        assert len(result["alice"]) == 3
        assert len(result["bob"]) == 2
        for client_id in ("alice", "bob"):
            serial = [ap.compute_spectrum(entry)
                      for entry in ap.buffer.entries_for_client(client_id)]
            _assert_spectra_equal(serial, result[client_id])
            for spectrum in result[client_id]:
                assert spectrum.client_id == client_id
