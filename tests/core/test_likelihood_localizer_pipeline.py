"""Tests for likelihood synthesis, hill climbing and the end-to-end localizer."""

import numpy as np
import pytest

from repro.array import ArrayGeometry, ArrayReceiver, DeployedArray
from repro.channel import ChannelBuilder, ChannelModelConfig
from repro.core import (
    AoASpectrum,
    LikelihoodMap,
    LocalizerConfig,
    LocationEstimator,
    SpectrumComputer,
    SpectrumConfig,
    default_angle_grid,
    hill_climb,
    likelihood_at,
    refine_from_seeds,
    synthesize_likelihood,
)
from repro.errors import EstimationError
from repro.geometry import Point2D, bearing_deg, rectangular_room


def _spectrum_towards(ap_position, target, width=3.0, orientation=0.0):
    """A synthetic spectrum whose single peak points from the AP at the target."""
    angles = default_angle_grid(1.0)
    bearing = (bearing_deg(ap_position, target) - orientation) % 360.0
    distance = np.minimum(np.abs(angles - bearing), 360 - np.abs(angles - bearing))
    power = np.exp(-0.5 * (distance / width) ** 2) + 1e-4
    return AoASpectrum(angles, power, ap_position=ap_position,
                       ap_orientation_deg=orientation)


class TestLikelihood:
    def test_synthetic_spectra_peak_at_target(self):
        target = Point2D(6.0, 4.0)
        spectra = [
            _spectrum_towards(Point2D(0.0, 0.0), target),
            _spectrum_towards(Point2D(12.0, 0.0), target, orientation=45.0),
            _spectrum_towards(Point2D(6.0, 9.0), target, orientation=180.0),
        ]
        heatmap = synthesize_likelihood(spectra, (0, 0, 12, 9), resolution_m=0.1)
        peak = heatmap.peak_position()
        assert peak.distance_to(target) < 0.2

    def test_likelihood_at_is_product(self):
        target = Point2D(5.0, 5.0)
        spectra = [_spectrum_towards(Point2D(0.0, 0.0), target),
                   _spectrum_towards(Point2D(10.0, 0.0), target)]
        combined = likelihood_at(spectra, target)
        individual = [s.power_towards(target) for s in spectra]
        assert combined == pytest.approx(individual[0] * individual[1])

    def test_floor_prevents_single_ap_veto(self):
        target = Point2D(5.0, 5.0)
        good = _spectrum_towards(Point2D(0.0, 0.0), target)
        # The blind AP's only peak points far away from the target's bearing.
        blind = _spectrum_towards(Point2D(10.0, 0.0), Point2D(20.0, 9.0))
        without_floor = likelihood_at([good, blind], target, floor=0.0)
        with_floor = likelihood_at([good, blind], target, floor=0.05)
        assert with_floor > without_floor

    def test_heatmap_validation_and_top_positions(self):
        with pytest.raises(EstimationError):
            LikelihoodMap(np.arange(3.0), np.arange(4.0), np.zeros((3, 3)))
        target = Point2D(6.0, 4.0)
        spectra = [_spectrum_towards(Point2D(0.0, 0.0), target),
                   _spectrum_towards(Point2D(12.0, 0.0), target)]
        heatmap = synthesize_likelihood(spectra, (0, 0, 12, 9), resolution_m=0.25)
        tops = heatmap.top_positions(3)
        assert len(tops) == 3
        # Seeds are mutually separated.
        assert tops[0][0].distance_to(tops[1][0]) >= 3 * heatmap.resolution_m
        assert tops[0][1] >= tops[1][1] >= tops[2][1]

    def test_spectra_without_position_rejected(self):
        angles = default_angle_grid(1.0)
        spectrum = AoASpectrum(angles, np.ones_like(angles))
        with pytest.raises(EstimationError):
            synthesize_likelihood([spectrum], (0, 0, 1, 1))

    def test_degenerate_single_column_bounds(self):
        # Regression: bounds tighter than one grid cell along x collapse
        # the map to a single column; ``resolution_m`` read x_coords[1]
        # unconditionally and died with a bare IndexError, taking
        # top_positions and hill-climb seeding down with it.
        target = Point2D(5.04, 4.0)
        spectra = [_spectrum_towards(Point2D(5.0, 0.0), target),
                   _spectrum_towards(Point2D(5.1, 9.0), target)]
        heatmap = synthesize_likelihood(spectra, (5.0, 0.0, 5.05, 9.0),
                                        resolution_m=0.1)
        assert heatmap.values.shape[1] == 1
        # The one-cell x axis answers with the y spacing.
        assert heatmap.resolution_m == pytest.approx(0.1)
        tops = heatmap.top_positions(3)
        assert len(tops) >= 1
        assert all(position.x == 5.0 for position, _ in tops)

    def test_degenerate_single_cell_map(self):
        target = Point2D(5.0, 4.0)
        spectra = [_spectrum_towards(Point2D(0.0, 4.0), target)]
        heatmap = synthesize_likelihood(spectra, (5.0, 4.0, 5.04, 4.04),
                                        resolution_m=0.1)
        assert heatmap.values.shape == (1, 1)
        assert heatmap.resolution_m == 0.0
        [(position, value)] = heatmap.top_positions(3)
        assert (position.x, position.y) == (5.0, 4.0)
        assert value == heatmap.values[0, 0]

    def test_estimator_survives_degenerate_bounds(self):
        # End to end: grid seeding plus hill climbing on a one-column map.
        target = Point2D(5.02, 4.0)
        spectra = [_spectrum_towards(Point2D(5.0, 0.0), target),
                   _spectrum_towards(Point2D(5.1, 9.0), target)]
        estimator = LocationEstimator(
            (5.0, 0.0, 5.05, 9.0), LocalizerConfig(grid_resolution_m=0.1))
        estimate = estimator.estimate(spectra, client_id="edge")
        assert 5.0 <= estimate.position.x <= 5.05
        assert estimate.likelihood > 0.0


class TestHillClimbing:
    def test_converges_to_smooth_maximum(self):
        target = Point2D(3.0, 4.0)

        def likelihood(p):
            return float(np.exp(-((p.x - target.x) ** 2 + (p.y - target.y) ** 2)))

        result = hill_climb(likelihood, Point2D(2.5, 3.5), initial_step_m=0.2,
                            min_step_m=0.001)
        assert result.position.distance_to(target) < 0.01
        assert result.iterations > 1

    def test_refine_from_seeds_picks_best_basin(self):
        def likelihood(p):
            # Two bumps; the one at (8, 8) is higher.
            return (np.exp(-((p.x - 2) ** 2 + (p.y - 2) ** 2))
                    + 2 * np.exp(-((p.x - 8) ** 2 + (p.y - 8) ** 2)))

        result = refine_from_seeds(likelihood,
                                   [(Point2D(2.2, 2.2), 1.0), (Point2D(7.5, 7.5), 1.5)],
                                   initial_step_m=0.2, min_step_m=0.001)
        assert result.position.distance_to(Point2D(8.0, 8.0)) < 0.05

    def test_parameter_validation(self):
        with pytest.raises(EstimationError):
            hill_climb(lambda p: 0.0, Point2D(0, 0), initial_step_m=0.0)
        with pytest.raises(EstimationError):
            refine_from_seeds(lambda p: 0.0, [])


class TestEndToEndLocalization:
    @pytest.fixture
    def room_setup(self):
        room = rectangular_room(20.0, 10.0)
        builder = ChannelBuilder(room, ChannelModelConfig(max_reflections=1))
        geometry = ArrayGeometry.uniform_linear(8)
        sites = [(Point2D(1.0, 1.0), 45.0), (Point2D(19.0, 1.0), 135.0),
                 (Point2D(10.0, 9.5), 0.0)]
        arrays = [DeployedArray(geometry, position=p, orientation_deg=o)
                  for p, o in sites]
        return room, builder, arrays

    def _spectra_for(self, builder, arrays, client, seed=0):
        computer = SpectrumComputer(SpectrumConfig())
        spectra = []
        rng = np.random.default_rng(seed)
        for index, array in enumerate(arrays):
            channel = builder.build(client, array.position, client_id="c",
                                    ap_id=str(index))
            snapshots = ArrayReceiver(array, apply_phase_offsets=False).capture(
                channel, num_snapshots=10, snr_db=25.0, rng=rng)
            spectra.append(computer.compute(snapshots, array))
        return spectra

    def test_three_ap_localization_is_sub_metre_median(self, room_setup):
        room, builder, arrays = room_setup
        estimator = LocationEstimator(room.bounding_box(0.5),
                                      LocalizerConfig(grid_resolution_m=0.2,
                                                      spectrum_floor=0.05))
        errors = []
        rng = np.random.default_rng(1)
        for trial in range(6):
            client = Point2D(float(rng.uniform(4, 16)), float(rng.uniform(3, 8)))
            spectra = self._spectra_for(builder, arrays, client, seed=trial)
            estimate = estimator.estimate(spectra, "c")
            errors.append(estimate.error_to(client))
        assert float(np.median(errors)) < 1.0

    def test_hill_climbing_refines_grid_estimate(self, room_setup):
        room, builder, arrays = room_setup
        client = Point2D(7.3, 4.6)
        spectra = self._spectra_for(builder, arrays, client)
        coarse = LocationEstimator(room.bounding_box(0.5),
                                   LocalizerConfig(grid_resolution_m=0.5,
                                                   refine_with_hill_climbing=False))
        refined = LocationEstimator(room.bounding_box(0.5),
                                    LocalizerConfig(grid_resolution_m=0.5))
        coarse_estimate = coarse.estimate(spectra)
        refined_estimate = refined.estimate(spectra)
        # Hill climbing maximizes the likelihood; it must never return a less
        # likely point than the best grid cell it started from.
        assert refined_estimate.likelihood >= coarse_estimate.likelihood - 1e-12
        assert refined_estimate.error_to(client) <= coarse_estimate.error_to(client) + 0.3

    def test_keep_heatmap_option(self, room_setup):
        room, builder, arrays = room_setup
        client = Point2D(7.3, 4.6)
        spectra = self._spectra_for(builder, arrays, client)
        estimator = LocationEstimator(room.bounding_box(0.5),
                                      LocalizerConfig(grid_resolution_m=0.5,
                                                      keep_heatmap=True))
        estimate = estimator.estimate(spectra)
        assert estimate.heatmap is not None
        assert estimate.num_aps == 3

    def test_estimator_requires_spectra(self, room_setup):
        room, _, _ = room_setup
        estimator = LocationEstimator(room.bounding_box(0.5))
        with pytest.raises(EstimationError):
            estimator.estimate([])

    def test_invalid_bounds_rejected(self):
        with pytest.raises(EstimationError):
            LocationEstimator((0, 0, 0, 10))


class TestSpectrumComputerPipeline:
    def test_unoptimized_spectrum_is_mirror_symmetric(self, deployed_ula8,
                                                      two_path_channel, rng):
        receiver = ArrayReceiver(deployed_ula8, apply_phase_offsets=False)
        snapshots = receiver.capture(two_path_channel, 10, 25.0, rng=rng)
        computer = SpectrumComputer(SpectrumConfig(apply_weighting=False))
        spectrum = computer.compute(snapshots, deployed_ula8)
        assert spectrum.power_at_local(60.0)[0] == pytest.approx(
            spectrum.power_at_local(300.0)[0], rel=1e-6)

    def test_estimator_method_switch(self, deployed_ula8, two_path_channel, rng):
        receiver = ArrayReceiver(deployed_ula8, apply_phase_offsets=False)
        snapshots = receiver.capture(two_path_channel, 10, 25.0, rng=rng)
        for method in ("music", "bartlett", "capon"):
            computer = SpectrumComputer(SpectrumConfig(method=method,
                                                       apply_weighting=False))
            spectrum = computer.compute(snapshots, deployed_ula8)
            peak_angle = spectrum.angles_deg[int(np.argmax(spectrum.power))]
            folded = min(peak_angle, 360 - peak_angle)
            assert folded == pytest.approx(60.0, abs=8.0) or folded == pytest.approx(
                120.0, abs=8.0)

    def test_unknown_method_rejected(self):
        with pytest.raises(EstimationError):
            SpectrumConfig(method="esprit")
