"""Tests for covariance estimation, subspace splitting and spatial smoothing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.array import ArrayGeometry, ArrayReceiver, DeployedArray
from repro.channel import MultipathChannel
from repro.core import (
    decompose,
    decompose_many,
    effective_antennas,
    estimate_num_sources_mdl,
    forward_backward_covariance,
    forward_backward_covariance_many,
    sample_covariance,
    sample_covariance_many,
    smooth_snapshots,
    smoothed_covariance,
    smoothed_covariance_many,
)
from repro.errors import EstimationError


def _snapshots_for(bearings, amplitudes, num=200, snr_db=30.0, seed=0, antennas=8):
    geometry = ArrayGeometry.uniform_linear(antennas)
    array = DeployedArray(geometry)
    channel = MultipathChannel.from_bearings(bearings, amplitudes)
    receiver = ArrayReceiver(array, apply_phase_offsets=False)
    return receiver.capture(channel, num_snapshots=num, snr_db=snr_db,
                            rng=np.random.default_rng(seed)).samples


class TestSampleCovariance:
    def test_is_hermitian_and_psd(self, capture_snapshots):
        covariance = sample_covariance(capture_snapshots.samples)
        assert np.allclose(covariance, covariance.conj().T)
        eigenvalues = np.linalg.eigvalsh(covariance)
        assert np.all(eigenvalues > -1e-9)

    def test_shape_validation(self):
        with pytest.raises(EstimationError):
            sample_covariance(np.zeros(8))
        with pytest.raises(EstimationError):
            sample_covariance(np.zeros((8, 4)), diagonal_loading=-1.0)

    def test_diagonal_loading_raises_diagonal(self, capture_snapshots):
        plain = sample_covariance(capture_snapshots.samples)
        loaded = sample_covariance(capture_snapshots.samples, diagonal_loading=0.1)
        assert np.all(np.real(np.diag(loaded)) > np.real(np.diag(plain)))

    def test_forward_backward_is_persymmetric(self, capture_snapshots):
        covariance = forward_backward_covariance(capture_snapshots.samples)
        exchange = np.eye(covariance.shape[0])[::-1]
        assert np.allclose(covariance, exchange @ covariance.conj() @ exchange)


class TestSubspace:
    def test_single_source_gives_one_signal_eigenvalue(self):
        snapshots = _snapshots_for([50.0], [1.0])
        decomposition = decompose(sample_covariance(snapshots))
        assert decomposition.num_sources == 1
        # Largest eigenvalue well above the noise floor.
        assert decomposition.eigenvalues[0] > 10 * decomposition.eigenvalues[1]

    def test_two_incoherent_sources_detected(self):
        # Two sources with independent data: build by summing two captures.
        a = _snapshots_for([40.0], [1.0], seed=1)
        b = _snapshots_for([120.0], [1.0], seed=2)
        decomposition = decompose(sample_covariance(a + b))
        assert decomposition.num_sources == 2

    def test_forced_source_count_is_respected(self, capture_snapshots):
        decomposition = decompose(sample_covariance(capture_snapshots.samples),
                                  num_sources=3)
        assert decomposition.num_sources == 3
        assert decomposition.signal_subspace.shape == (8, 3)
        assert decomposition.noise_subspace.shape == (8, 5)

    def test_subspaces_are_orthogonal(self, capture_snapshots):
        decomposition = decompose(sample_covariance(capture_snapshots.samples))
        product = decomposition.signal_subspace.conj().T @ decomposition.noise_subspace
        assert np.allclose(product, 0.0, atol=1e-9)

    def test_eigenvalues_sorted_non_increasing(self, capture_snapshots):
        decomposition = decompose(sample_covariance(capture_snapshots.samples))
        assert np.all(np.diff(decomposition.eigenvalues) <= 1e-9)

    def test_at_least_one_noise_eigenvector_remains(self):
        snapshots = _snapshots_for([10.0, 60.0, 100.0, 140.0], [1, 1, 1, 1],
                                   antennas=4)
        decomposition = decompose(sample_covariance(snapshots))
        assert decomposition.num_sources <= 3

    def test_noise_power_estimate_close_to_truth(self):
        snapshots = _snapshots_for([50.0], [1.0], num=2000, snr_db=10.0)
        covariance = sample_covariance(snapshots)
        decomposition = decompose(covariance, num_sources=1)
        signal_power = np.real(np.trace(covariance)) / 8
        snr_estimate = 10 * np.log10(
            max(signal_power - decomposition.noise_power_estimate, 1e-12)
            / decomposition.noise_power_estimate)
        assert snr_estimate == pytest.approx(10.0, abs=1.5)

    def test_mdl_agrees_in_easy_conditions(self):
        a = _snapshots_for([40.0], [1.0], seed=3)
        b = _snapshots_for([120.0], [1.0], seed=4)
        covariance = sample_covariance(a + b)
        eigenvalues = np.linalg.eigvalsh(covariance)
        assert estimate_num_sources_mdl(eigenvalues, 200) == 2

    def test_invalid_inputs(self):
        with pytest.raises(EstimationError):
            decompose(np.zeros((3, 4)))
        with pytest.raises(EstimationError):
            decompose(np.eye(4), threshold_fraction=1.5)


class TestSpatialSmoothing:
    def test_effective_antennas(self):
        assert effective_antennas(8, 1) == 8
        assert effective_antennas(8, 3) == 6
        with pytest.raises(EstimationError):
            effective_antennas(4, 4)

    def test_single_group_equals_plain_covariance(self, capture_snapshots):
        plain = sample_covariance(capture_snapshots.samples)
        smoothed = smoothed_covariance(capture_snapshots.samples, 1)
        assert np.allclose(plain, smoothed)

    def test_smoothing_restores_rank_for_coherent_sources(self):
        """Coherent multipath makes Rxx rank-1; smoothing recovers rank 2."""
        snapshots = _snapshots_for([60.0, 120.0], [1.0, 0.8 * np.exp(0.5j)],
                                   num=100, snr_db=60.0)
        plain_eigenvalues = np.sort(np.linalg.eigvalsh(sample_covariance(snapshots)))[::-1]
        smoothed_eigenvalues = np.sort(np.linalg.eigvalsh(
            smoothed_covariance(snapshots, 3)))[::-1]
        # Without smoothing the second eigenvalue is essentially noise.
        assert plain_eigenvalues[1] / plain_eigenvalues[0] < 1e-3
        # With smoothing it becomes a clear signal eigenvalue.
        assert smoothed_eigenvalues[1] / smoothed_eigenvalues[0] > 1e-2

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=1, max_value=4))
    def test_smoothed_covariance_shape(self, groups):
        snapshots = _snapshots_for([45.0], [1.0], num=20)
        expected = 8 - groups + 1
        covariance = smoothed_covariance(snapshots, groups)
        assert covariance.shape == (expected, expected)

    def test_signal_level_smoothing_shape(self):
        snapshots = _snapshots_for([45.0], [1.0], num=20)
        averaged = smooth_snapshots(snapshots, 3)
        assert averaged.shape == (6, 20)


def _snapshot_stack(num_frames=6, num=10, antennas=8, seed=11):
    """A stack of frames with varied bearings/coherence, one rng stream."""
    rng = np.random.default_rng(seed)
    frames = []
    for _ in range(num_frames):
        bearings = [float(rng.uniform(10.0, 170.0)),
                    float(rng.uniform(10.0, 170.0))]
        gains = [1.0, float(rng.uniform(0.3, 0.9)) * np.exp(1j * rng.uniform(0, 6))]
        frames.append(_snapshots_for(bearings, gains, num=num, snr_db=20.0,
                                     seed=int(rng.integers(1 << 30)),
                                     antennas=antennas))
    return np.stack(frames)


class TestStackedCovariance:
    """The *_many variants must be bit-for-bit identical per frame."""

    def test_sample_covariance_many_matches_serial_bitwise(self):
        stack = _snapshot_stack()
        batched = sample_covariance_many(stack)
        for frame in range(stack.shape[0]):
            assert np.array_equal(batched[frame], sample_covariance(stack[frame]))

    def test_sample_covariance_many_with_loading_matches_serial(self):
        stack = _snapshot_stack(num_frames=4)
        batched = sample_covariance_many(stack, diagonal_loading=0.05)
        for frame in range(stack.shape[0]):
            assert np.array_equal(
                batched[frame],
                sample_covariance(stack[frame], diagonal_loading=0.05))

    def test_forward_backward_many_matches_serial_bitwise(self):
        stack = _snapshot_stack(num_frames=4)
        batched = forward_backward_covariance_many(stack)
        for frame in range(stack.shape[0]):
            assert np.array_equal(batched[frame],
                                  forward_backward_covariance(stack[frame]))

    @pytest.mark.parametrize("groups", [1, 2, 3])
    @pytest.mark.parametrize("forward_backward", [False, True])
    def test_smoothed_covariance_many_matches_serial_bitwise(
            self, groups, forward_backward):
        stack = _snapshot_stack(num_frames=5)
        batched = smoothed_covariance_many(stack, groups,
                                           forward_backward=forward_backward)
        for frame in range(stack.shape[0]):
            assert np.array_equal(
                batched[frame],
                smoothed_covariance(stack[frame], groups,
                                    forward_backward=forward_backward))

    def test_stack_shape_validation(self):
        with pytest.raises(EstimationError):
            sample_covariance_many(np.zeros((8, 4)))
        with pytest.raises(EstimationError):
            smoothed_covariance_many(np.zeros((2, 8, 4)), 0)


class TestStackedDecompose:
    """decompose_many over an (F, M, M) eigh stack vs per-frame decompose."""

    def _assert_frames_equal(self, batch, covariances, num_sources=None):
        for frame in range(covariances.shape[0]):
            forced = None
            if num_sources is not None:
                forced = num_sources if np.isscalar(num_sources) \
                    else num_sources[frame]
            serial = decompose(covariances[frame], num_sources=forced)
            stacked = batch.frame(frame)
            assert stacked.num_sources == serial.num_sources
            assert np.array_equal(stacked.eigenvalues, serial.eigenvalues)
            assert np.array_equal(stacked.eigenvectors, serial.eigenvectors)
            assert np.array_equal(stacked.noise_subspace, serial.noise_subspace)
            assert np.array_equal(stacked.signal_subspace, serial.signal_subspace)

    def test_matches_serial_bitwise(self):
        covariances = sample_covariance_many(_snapshot_stack())
        self._assert_frames_equal(decompose_many(covariances), covariances)

    def test_degenerate_frames_mixed_in_one_batch(self):
        # An all-zero covariance (D falls back to 1), a full-rank noise
        # frame pushing D to M - 1, and ordinary frames, all in one stack.
        stack = _snapshot_stack(num_frames=3, antennas=6)
        covariances = list(sample_covariance_many(stack))
        covariances.append(np.zeros((6, 6), dtype=np.complex128))
        covariances.append(np.eye(6, dtype=np.complex128))  # all equal -> D = M-1
        covariances = np.stack(covariances)
        batch = decompose_many(covariances)
        assert int(batch.num_sources[-2]) == 1      # all-zero frame
        assert int(batch.num_sources[-1]) == 5      # D capped at M - 1
        self._assert_frames_equal(batch, covariances)

    def test_forced_counts_scalar_and_per_frame(self):
        covariances = sample_covariance_many(_snapshot_stack(num_frames=4))
        self._assert_frames_equal(
            decompose_many(covariances, num_sources=3), covariances,
            num_sources=3)
        per_frame = [1, 3, 7, 2]   # 7 exceeds M - 1 and must clamp like serial
        self._assert_frames_equal(
            decompose_many(covariances, num_sources=per_frame), covariances,
            num_sources=per_frame)

    def test_noise_subspace_grouping_covers_every_frame(self):
        covariances = sample_covariance_many(_snapshot_stack(num_frames=8))
        batch = decompose_many(covariances)
        total = 0
        for count in np.unique(batch.num_sources):
            group = batch.noise_subspaces(int(count))
            assert group.shape[2] == batch.num_antennas - int(count)
            total += group.shape[0]
        assert total == len(batch)

    def test_stack_validation(self):
        with pytest.raises(EstimationError):
            decompose_many(np.zeros((2, 3, 4)))
        with pytest.raises(EstimationError):
            decompose_many(np.zeros((2, 4, 4)), threshold_fraction=1.5)
        with pytest.raises(EstimationError):
            decompose_many(np.zeros((2, 4, 4)), num_sources=[1, 2, 3])

    def test_empty_stack(self):
        batch = decompose_many(np.zeros((0, 4, 4)))
        assert len(batch) == 0
        assert batch.num_sources.shape == (0,)
