"""Tests for covariance estimation, subspace splitting and spatial smoothing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.array import ArrayGeometry, ArrayReceiver, DeployedArray
from repro.channel import MultipathChannel
from repro.core import (
    decompose,
    effective_antennas,
    estimate_num_sources_mdl,
    forward_backward_covariance,
    sample_covariance,
    smooth_snapshots,
    smoothed_covariance,
)
from repro.errors import EstimationError


def _snapshots_for(bearings, amplitudes, num=200, snr_db=30.0, seed=0, antennas=8):
    geometry = ArrayGeometry.uniform_linear(antennas)
    array = DeployedArray(geometry)
    channel = MultipathChannel.from_bearings(bearings, amplitudes)
    receiver = ArrayReceiver(array, apply_phase_offsets=False)
    return receiver.capture(channel, num_snapshots=num, snr_db=snr_db,
                            rng=np.random.default_rng(seed)).samples


class TestSampleCovariance:
    def test_is_hermitian_and_psd(self, capture_snapshots):
        covariance = sample_covariance(capture_snapshots.samples)
        assert np.allclose(covariance, covariance.conj().T)
        eigenvalues = np.linalg.eigvalsh(covariance)
        assert np.all(eigenvalues > -1e-9)

    def test_shape_validation(self):
        with pytest.raises(EstimationError):
            sample_covariance(np.zeros(8))
        with pytest.raises(EstimationError):
            sample_covariance(np.zeros((8, 4)), diagonal_loading=-1.0)

    def test_diagonal_loading_raises_diagonal(self, capture_snapshots):
        plain = sample_covariance(capture_snapshots.samples)
        loaded = sample_covariance(capture_snapshots.samples, diagonal_loading=0.1)
        assert np.all(np.real(np.diag(loaded)) > np.real(np.diag(plain)))

    def test_forward_backward_is_persymmetric(self, capture_snapshots):
        covariance = forward_backward_covariance(capture_snapshots.samples)
        exchange = np.eye(covariance.shape[0])[::-1]
        assert np.allclose(covariance, exchange @ covariance.conj() @ exchange)


class TestSubspace:
    def test_single_source_gives_one_signal_eigenvalue(self):
        snapshots = _snapshots_for([50.0], [1.0])
        decomposition = decompose(sample_covariance(snapshots))
        assert decomposition.num_sources == 1
        # Largest eigenvalue well above the noise floor.
        assert decomposition.eigenvalues[0] > 10 * decomposition.eigenvalues[1]

    def test_two_incoherent_sources_detected(self):
        # Two sources with independent data: build by summing two captures.
        a = _snapshots_for([40.0], [1.0], seed=1)
        b = _snapshots_for([120.0], [1.0], seed=2)
        decomposition = decompose(sample_covariance(a + b))
        assert decomposition.num_sources == 2

    def test_forced_source_count_is_respected(self, capture_snapshots):
        decomposition = decompose(sample_covariance(capture_snapshots.samples),
                                  num_sources=3)
        assert decomposition.num_sources == 3
        assert decomposition.signal_subspace.shape == (8, 3)
        assert decomposition.noise_subspace.shape == (8, 5)

    def test_subspaces_are_orthogonal(self, capture_snapshots):
        decomposition = decompose(sample_covariance(capture_snapshots.samples))
        product = decomposition.signal_subspace.conj().T @ decomposition.noise_subspace
        assert np.allclose(product, 0.0, atol=1e-9)

    def test_eigenvalues_sorted_non_increasing(self, capture_snapshots):
        decomposition = decompose(sample_covariance(capture_snapshots.samples))
        assert np.all(np.diff(decomposition.eigenvalues) <= 1e-9)

    def test_at_least_one_noise_eigenvector_remains(self):
        snapshots = _snapshots_for([10.0, 60.0, 100.0, 140.0], [1, 1, 1, 1],
                                   antennas=4)
        decomposition = decompose(sample_covariance(snapshots))
        assert decomposition.num_sources <= 3

    def test_noise_power_estimate_close_to_truth(self):
        snapshots = _snapshots_for([50.0], [1.0], num=2000, snr_db=10.0)
        covariance = sample_covariance(snapshots)
        decomposition = decompose(covariance, num_sources=1)
        signal_power = np.real(np.trace(covariance)) / 8
        snr_estimate = 10 * np.log10(
            max(signal_power - decomposition.noise_power_estimate, 1e-12)
            / decomposition.noise_power_estimate)
        assert snr_estimate == pytest.approx(10.0, abs=1.5)

    def test_mdl_agrees_in_easy_conditions(self):
        a = _snapshots_for([40.0], [1.0], seed=3)
        b = _snapshots_for([120.0], [1.0], seed=4)
        covariance = sample_covariance(a + b)
        eigenvalues = np.linalg.eigvalsh(covariance)
        assert estimate_num_sources_mdl(eigenvalues, 200) == 2

    def test_invalid_inputs(self):
        with pytest.raises(EstimationError):
            decompose(np.zeros((3, 4)))
        with pytest.raises(EstimationError):
            decompose(np.eye(4), threshold_fraction=1.5)


class TestSpatialSmoothing:
    def test_effective_antennas(self):
        assert effective_antennas(8, 1) == 8
        assert effective_antennas(8, 3) == 6
        with pytest.raises(EstimationError):
            effective_antennas(4, 4)

    def test_single_group_equals_plain_covariance(self, capture_snapshots):
        plain = sample_covariance(capture_snapshots.samples)
        smoothed = smoothed_covariance(capture_snapshots.samples, 1)
        assert np.allclose(plain, smoothed)

    def test_smoothing_restores_rank_for_coherent_sources(self):
        """Coherent multipath makes Rxx rank-1; smoothing recovers rank 2."""
        snapshots = _snapshots_for([60.0, 120.0], [1.0, 0.8 * np.exp(0.5j)],
                                   num=100, snr_db=60.0)
        plain_eigenvalues = np.sort(np.linalg.eigvalsh(sample_covariance(snapshots)))[::-1]
        smoothed_eigenvalues = np.sort(np.linalg.eigvalsh(
            smoothed_covariance(snapshots, 3)))[::-1]
        # Without smoothing the second eigenvalue is essentially noise.
        assert plain_eigenvalues[1] / plain_eigenvalues[0] < 1e-3
        # With smoothing it becomes a clear signal eigenvalue.
        assert smoothed_eigenvalues[1] / smoothed_eigenvalues[0] > 1e-2

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=1, max_value=4))
    def test_smoothed_covariance_shape(self, groups):
        snapshots = _snapshots_for([45.0], [1.0], num=20)
        expected = 8 - groups + 1
        covariance = smoothed_covariance(snapshots, groups)
        assert covariance.shape == (expected, expected)

    def test_signal_level_smoothing_shape(self):
        snapshots = _snapshots_for([45.0], [1.0], num=20)
        averaged = smooth_snapshots(snapshots, 3)
        assert averaged.shape == (6, 20)
