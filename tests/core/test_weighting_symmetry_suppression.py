"""Tests for geometry weighting, symmetry removal and multipath suppression."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.array import ArrayGeometry, DeployedArray, DiversitySynthesizer
from repro.channel import MultipathChannel
from repro.core import (
    AoASpectrum,
    MultipathSuppressor,
    SymmetryResolver,
    WindowCache,
    apply_geometry_weighting,
    cached_geometry_window,
    default_angle_grid,
    default_window_cache,
    geometry_window,
    group_spectra_by_time,
    suppress_multipath,
)
from repro.errors import EstimationError


def _gaussian(centers, heights, width=4.0, **metadata):
    angles = default_angle_grid(1.0)
    power = np.zeros_like(angles)
    for center, height in zip(centers, heights, strict=True):
        distance = np.minimum(np.abs(angles - center), 360 - np.abs(angles - center))
        power += height * np.exp(-0.5 * (distance / width) ** 2)
    return AoASpectrum(angles, power, **metadata)


class TestGeometryWeighting:
    def test_window_matches_paper_definition(self):
        angles = default_angle_grid(1.0)
        window = geometry_window(angles)
        # Reliable region: unity weight.
        assert window[90] == pytest.approx(1.0)
        assert window[45] == pytest.approx(1.0)
        # Near endfire: sin(theta) weight.
        assert window[5] == pytest.approx(abs(np.sin(np.radians(5.0))))
        assert window[175] == pytest.approx(abs(np.sin(np.radians(175.0))))
        # Mirror side folds onto the same endfire distance.
        assert window[355] == pytest.approx(window[5])

    def test_weighting_attenuates_endfire_peaks_only(self):
        spectrum = _gaussian([5.0, 90.0], [1.0, 1.0])
        weighted = apply_geometry_weighting(spectrum)
        assert weighted.power_at_local(90.0)[0] == pytest.approx(
            spectrum.power_at_local(90.0)[0])
        assert weighted.power_at_local(5.0)[0] < 0.2 * spectrum.power_at_local(5.0)[0]

    def test_invalid_reliable_angle(self):
        with pytest.raises(EstimationError):
            geometry_window(default_angle_grid(1.0), reliable_angle_deg=95.0)
        with pytest.raises(EstimationError):
            cached_geometry_window(default_angle_grid(1.0),
                                   reliable_angle_deg=95.0)


class TestWindowCache:
    def test_cached_window_equals_direct_computation(self):
        angles = default_angle_grid(1.0)
        cached = cached_geometry_window(angles)
        assert np.array_equal(cached, geometry_window(angles))
        assert not cached.flags.writeable

    def test_hits_per_grid_signature_and_angle(self):
        cache = WindowCache()
        angles = default_angle_grid(1.0)
        first = cache.get(angles, 15.0, lambda: geometry_window(angles, 15.0))
        again = cache.get(angles.copy(), 15.0,
                          lambda: geometry_window(angles, 15.0))
        assert first is again          # content-derived key, not identity
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        cache.get(angles, 20.0, lambda: geometry_window(angles, 20.0))
        assert cache.stats.misses == 2  # different reliable angle, new entry
        assert len(cache) == 2

    def test_lru_eviction(self):
        cache = WindowCache(max_entries=2)
        grids = [default_angle_grid(res) for res in (1.0, 2.0, 3.0)]
        for grid in grids:
            cache.get(grid, 15.0, lambda grid=grid: geometry_window(grid))
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        # The oldest grid was evicted; re-fetching it is a miss.
        misses = cache.stats.misses
        cache.get(grids[0], 15.0, lambda: geometry_window(grids[0]))
        assert cache.stats.misses == misses + 1

    def test_concurrent_access_is_lock_safe(self):
        import threading

        cache = WindowCache(max_entries=4)
        grids = [default_angle_grid(res) for res in (0.5, 1.0, 1.5, 2.0, 3.0, 4.5)]
        errors = []

        def worker(seed):
            rng = np.random.default_rng(seed)
            try:
                for _ in range(200):
                    grid = grids[int(rng.integers(len(grids)))]
                    window = cache.get(grid, 15.0,
                                       lambda grid=grid: geometry_window(grid))
                    assert window.shape == grid.shape
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(seed,))
                   for seed in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []

    def test_default_cache_shared_by_weighting(self):
        default_window_cache().clear()
        angles = default_angle_grid(0.75)
        spectrum = AoASpectrum(angles, np.ones_like(angles))
        before = default_window_cache().stats.lookups
        apply_geometry_weighting(spectrum)
        apply_geometry_weighting(spectrum)
        stats = default_window_cache().stats
        assert stats.lookups >= before + 2
        assert stats.hits >= 1


class TestSymmetryResolver:
    def _capture(self, azimuth_deg, snr_db=30.0, seed=0):
        array = DeployedArray(ArrayGeometry.linear_with_symmetry_antenna(8))
        channel = MultipathChannel.from_bearings([azimuth_deg], [1.0])
        synthesizer = DiversitySynthesizer(array, list(range(8)), [8])
        snapshots = synthesizer.capture(channel, num_snapshots=10, snr_db=snr_db,
                                        rng=np.random.default_rng(seed))
        return array, snapshots

    def test_linear_geometry_rejected(self):
        with pytest.raises(EstimationError):
            SymmetryResolver(ArrayGeometry.uniform_linear(8), 0.1249)

    @settings(max_examples=15, deadline=None)
    @given(st.floats(min_value=25.0, max_value=155.0))
    def test_upper_half_sources_keep_upper_half(self, azimuth):
        array, snapshots = self._capture(azimuth)
        resolver = SymmetryResolver(array.geometry, array.wavelength_m)
        spectrum = _gaussian([azimuth, 360.0 - azimuth], [1.0, 1.0])
        resolved = resolver.resolve(spectrum, snapshots.samples)
        assert resolved.power_at_local(azimuth)[0] > resolved.power_at_local(
            360.0 - azimuth)[0]

    @settings(max_examples=15, deadline=None)
    @given(st.floats(min_value=205.0, max_value=335.0))
    def test_lower_half_sources_keep_lower_half(self, azimuth):
        array, snapshots = self._capture(azimuth)
        resolver = SymmetryResolver(array.geometry, array.wavelength_m)
        spectrum = _gaussian([azimuth, 360.0 - azimuth], [1.0, 1.0])
        resolved = resolver.resolve(spectrum, snapshots.samples)
        assert resolved.power_at_local(azimuth)[0] > resolved.power_at_local(
            360.0 - azimuth)[0]

    def test_resolve_many_matches_serial_bitwise(self):
        rng = np.random.default_rng(61)
        azimuths = [40.0, 300.0, 120.0, 250.0]
        captures = [self._capture(azimuth, seed=seed)
                    for seed, azimuth in enumerate(azimuths)]
        array = captures[0][0]
        resolver = SymmetryResolver(array.geometry, array.wavelength_m)
        spectra = [_gaussian([azimuth, (360.0 - azimuth) % 360.0],
                             [1.0, float(rng.uniform(0.5, 1.0))])
                   for azimuth in azimuths]
        stack = np.stack([snapshots.samples for _, snapshots in captures])
        batched = resolver.resolve_many(spectra, stack, attenuation=0.1)
        for spectrum, (_, snapshots), resolved in zip(spectra, captures, batched, strict=True):
            serial = resolver.resolve(spectrum, snapshots.samples,
                                      attenuation=0.1)
            assert np.array_equal(serial.power, resolved.power)
        assert resolver.resolve_many([], stack[:0]) == []

    def test_side_powers_many_requires_shared_grid(self):
        array, snapshots = self._capture(60.0)
        resolver = SymmetryResolver(array.geometry, array.wavelength_m)
        coarse = default_angle_grid(2.0)
        mismatched = [_gaussian([60.0], [1.0]),
                      AoASpectrum(coarse, np.ones_like(coarse))]
        stack = np.stack([snapshots.samples, snapshots.samples])
        with pytest.raises(EstimationError):
            resolver.side_powers_many(stack, mismatched)

    def test_attenuation_keeps_residual(self):
        array, snapshots = self._capture(60.0)
        resolver = SymmetryResolver(array.geometry, array.wavelength_m)
        spectrum = _gaussian([60.0, 300.0], [1.0, 1.0])
        resolved = resolver.resolve(spectrum, snapshots.samples, attenuation=0.1)
        assert resolved.power_at_local(300.0)[0] == pytest.approx(
            0.1 * spectrum.power_at_local(300.0)[0], rel=0.05)


class TestMultipathSuppression:
    def test_grouping_by_time(self):
        spectra = [_gaussian([50], [1.0], timestamp_s=t)
                   for t in (0.0, 0.03, 0.06, 0.5, 0.52)]
        groups = group_spectra_by_time(spectra, window_s=0.1, max_group_size=3)
        assert [len(g) for g in groups] == [3, 2]

    def test_grouping_anchors_on_inter_frame_gap(self):
        # Frames at 0 / 60 / 120 ms: each gap is 60 ms < 100 ms, so all
        # three belong together.  Anchoring the window on the group's
        # *first* frame used to split the 120 ms frame away from its
        # natural 60 ms companion into a suppression-skipping singleton.
        spectra = [_gaussian([50], [1.0], timestamp_s=t)
                   for t in (0.0, 0.06, 0.12)]
        groups = group_spectra_by_time(spectra, window_s=0.1, max_group_size=3)
        assert [len(g) for g in groups] == [3]

    def test_grouping_explicit_span_cap(self):
        spectra = [_gaussian([50], [1.0], timestamp_s=t)
                   for t in (0.0, 0.06, 0.12)]
        groups = group_spectra_by_time(spectra, window_s=0.1,
                                       max_group_size=3, max_span_s=0.1)
        # The 120 ms frame would stretch the group span past the cap, so
        # it starts a new group even though its gap is inside the window.
        assert [len(g) for g in groups] == [2, 1]

    def test_grouping_on_supplied_timestamps(self):
        # Streaming sessions group on ingest-resolved times, which may
        # differ from the spectra's own (all-default 0.0) timestamps.
        spectra = [_gaussian([50], [1.0]) for _ in range(3)]
        groups = group_spectra_by_time(spectra, window_s=0.1,
                                       timestamps=(0.0, 0.02, 0.5))
        assert [len(g) for g in groups] == [2, 1]
        with pytest.raises(EstimationError, match="timestamps"):
            group_spectra_by_time(spectra, timestamps=(0.0, 0.02))

    def test_singleton_group_passes_through(self):
        spectrum = _gaussian([50, 120], [1.0, 0.8])
        assert suppress_multipath([spectrum]) is spectrum

    def test_unstable_peak_removed_stable_kept(self):
        primary = _gaussian([50, 120], [1.0, 0.8])
        companion = _gaussian([51, 150], [1.0, 0.8])  # reflection moved 30 degrees
        suppressed = suppress_multipath([primary, companion])
        assert suppressed.power_at_local(50.0)[0] == pytest.approx(
            primary.power_at_local(50.0)[0])
        assert suppressed.power_at_local(120.0)[0] < 0.1 * primary.power_at_local(120.0)[0]

    def test_both_peaks_stable_nothing_removed(self):
        primary = _gaussian([50, 120], [1.0, 0.8])
        companion = _gaussian([52, 118], [0.9, 0.9])
        suppressed = suppress_multipath([primary, companion])
        assert suppressed.power_at_local(120.0)[0] == pytest.approx(
            primary.power_at_local(120.0)[0])

    def test_three_frame_group_requires_agreement_in_all(self):
        primary = _gaussian([50, 120], [1.0, 0.8])
        second = _gaussian([50, 121], [1.0, 0.8])
        third = _gaussian([50, 170], [1.0, 0.8])
        suppressed = MultipathSuppressor().suppress([primary, second, third])
        # 120-degree peak matches the second frame but not the third: removed.
        assert suppressed.power_at_local(120.0)[0] < 0.1 * primary.power_at_local(120.0)[0]

    def test_process_returns_one_spectrum_per_group(self):
        spectra = [_gaussian([50, 120], [1.0, 0.8], timestamp_s=t)
                   for t in (0.0, 0.03, 1.0)]
        outputs = MultipathSuppressor().process(spectra)
        assert len(outputs) == 2

    def test_process_groups_on_supplied_timestamps(self):
        spectra = [_gaussian([50, 120], [1.0, 0.8]) for _ in range(3)]
        outputs = MultipathSuppressor().process(
            spectra, timestamps=(0.0, 0.03, 1.0))
        assert len(outputs) == 2

    @pytest.mark.parametrize("kwargs", [
        {"residual_fraction": 1.5},
        {"tolerance_deg": -1.0},
        {"min_relative_height": -0.1},
        {"min_relative_height": 1.5},
        {"window_s": -0.1},
        {"max_group_size": 0},
        {"max_span_s": -1.0},
    ])
    def test_invalid_parameters(self, kwargs):
        # Bad values fail at construction/config-load time, not as a
        # confusing find_peaks error in the middle of a stream.
        with pytest.raises(EstimationError):
            MultipathSuppressor(**kwargs)
        with pytest.raises(EstimationError):
            MultipathSuppressor().suppress([])
