"""Tests for geometry weighting, symmetry removal and multipath suppression."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.array import ArrayGeometry, DeployedArray, DiversitySynthesizer
from repro.channel import MultipathChannel
from repro.core import (
    AoASpectrum,
    MultipathSuppressor,
    SymmetryResolver,
    apply_geometry_weighting,
    default_angle_grid,
    geometry_window,
    group_spectra_by_time,
    suppress_multipath,
)
from repro.errors import EstimationError


def _gaussian(centers, heights, width=4.0, **metadata):
    angles = default_angle_grid(1.0)
    power = np.zeros_like(angles)
    for center, height in zip(centers, heights):
        distance = np.minimum(np.abs(angles - center), 360 - np.abs(angles - center))
        power += height * np.exp(-0.5 * (distance / width) ** 2)
    return AoASpectrum(angles, power, **metadata)


class TestGeometryWeighting:
    def test_window_matches_paper_definition(self):
        angles = default_angle_grid(1.0)
        window = geometry_window(angles)
        # Reliable region: unity weight.
        assert window[90] == pytest.approx(1.0)
        assert window[45] == pytest.approx(1.0)
        # Near endfire: sin(theta) weight.
        assert window[5] == pytest.approx(abs(np.sin(np.radians(5.0))))
        assert window[175] == pytest.approx(abs(np.sin(np.radians(175.0))))
        # Mirror side folds onto the same endfire distance.
        assert window[355] == pytest.approx(window[5])

    def test_weighting_attenuates_endfire_peaks_only(self):
        spectrum = _gaussian([5.0, 90.0], [1.0, 1.0])
        weighted = apply_geometry_weighting(spectrum)
        assert weighted.power_at_local(90.0)[0] == pytest.approx(
            spectrum.power_at_local(90.0)[0])
        assert weighted.power_at_local(5.0)[0] < 0.2 * spectrum.power_at_local(5.0)[0]

    def test_invalid_reliable_angle(self):
        with pytest.raises(EstimationError):
            geometry_window(default_angle_grid(1.0), reliable_angle_deg=95.0)


class TestSymmetryResolver:
    def _capture(self, azimuth_deg, snr_db=30.0, seed=0):
        array = DeployedArray(ArrayGeometry.linear_with_symmetry_antenna(8))
        channel = MultipathChannel.from_bearings([azimuth_deg], [1.0])
        synthesizer = DiversitySynthesizer(array, list(range(8)), [8])
        snapshots = synthesizer.capture(channel, num_snapshots=10, snr_db=snr_db,
                                        rng=np.random.default_rng(seed))
        return array, snapshots

    def test_linear_geometry_rejected(self):
        with pytest.raises(EstimationError):
            SymmetryResolver(ArrayGeometry.uniform_linear(8), 0.1249)

    @settings(max_examples=15, deadline=None)
    @given(st.floats(min_value=25.0, max_value=155.0))
    def test_upper_half_sources_keep_upper_half(self, azimuth):
        array, snapshots = self._capture(azimuth)
        resolver = SymmetryResolver(array.geometry, array.wavelength_m)
        spectrum = _gaussian([azimuth, 360.0 - azimuth], [1.0, 1.0])
        resolved = resolver.resolve(spectrum, snapshots.samples)
        assert resolved.power_at_local(azimuth)[0] > resolved.power_at_local(
            360.0 - azimuth)[0]

    @settings(max_examples=15, deadline=None)
    @given(st.floats(min_value=205.0, max_value=335.0))
    def test_lower_half_sources_keep_lower_half(self, azimuth):
        array, snapshots = self._capture(azimuth)
        resolver = SymmetryResolver(array.geometry, array.wavelength_m)
        spectrum = _gaussian([azimuth, 360.0 - azimuth], [1.0, 1.0])
        resolved = resolver.resolve(spectrum, snapshots.samples)
        assert resolved.power_at_local(azimuth)[0] > resolved.power_at_local(
            360.0 - azimuth)[0]

    def test_attenuation_keeps_residual(self):
        array, snapshots = self._capture(60.0)
        resolver = SymmetryResolver(array.geometry, array.wavelength_m)
        spectrum = _gaussian([60.0, 300.0], [1.0, 1.0])
        resolved = resolver.resolve(spectrum, snapshots.samples, attenuation=0.1)
        assert resolved.power_at_local(300.0)[0] == pytest.approx(
            0.1 * spectrum.power_at_local(300.0)[0], rel=0.05)


class TestMultipathSuppression:
    def test_grouping_by_time(self):
        spectra = [_gaussian([50], [1.0], timestamp_s=t)
                   for t in (0.0, 0.03, 0.06, 0.5, 0.52)]
        groups = group_spectra_by_time(spectra, window_s=0.1, max_group_size=3)
        assert [len(g) for g in groups] == [3, 2]

    def test_grouping_anchors_on_inter_frame_gap(self):
        # Frames at 0 / 60 / 120 ms: each gap is 60 ms < 100 ms, so all
        # three belong together.  Anchoring the window on the group's
        # *first* frame used to split the 120 ms frame away from its
        # natural 60 ms companion into a suppression-skipping singleton.
        spectra = [_gaussian([50], [1.0], timestamp_s=t)
                   for t in (0.0, 0.06, 0.12)]
        groups = group_spectra_by_time(spectra, window_s=0.1, max_group_size=3)
        assert [len(g) for g in groups] == [3]

    def test_grouping_explicit_span_cap(self):
        spectra = [_gaussian([50], [1.0], timestamp_s=t)
                   for t in (0.0, 0.06, 0.12)]
        groups = group_spectra_by_time(spectra, window_s=0.1,
                                       max_group_size=3, max_span_s=0.1)
        # The 120 ms frame would stretch the group span past the cap, so
        # it starts a new group even though its gap is inside the window.
        assert [len(g) for g in groups] == [2, 1]

    def test_grouping_on_supplied_timestamps(self):
        # Streaming sessions group on ingest-resolved times, which may
        # differ from the spectra's own (all-default 0.0) timestamps.
        spectra = [_gaussian([50], [1.0]) for _ in range(3)]
        groups = group_spectra_by_time(spectra, window_s=0.1,
                                       timestamps=(0.0, 0.02, 0.5))
        assert [len(g) for g in groups] == [2, 1]
        with pytest.raises(EstimationError, match="timestamps"):
            group_spectra_by_time(spectra, timestamps=(0.0, 0.02))

    def test_singleton_group_passes_through(self):
        spectrum = _gaussian([50, 120], [1.0, 0.8])
        assert suppress_multipath([spectrum]) is spectrum

    def test_unstable_peak_removed_stable_kept(self):
        primary = _gaussian([50, 120], [1.0, 0.8])
        companion = _gaussian([51, 150], [1.0, 0.8])  # reflection moved 30 degrees
        suppressed = suppress_multipath([primary, companion])
        assert suppressed.power_at_local(50.0)[0] == pytest.approx(
            primary.power_at_local(50.0)[0])
        assert suppressed.power_at_local(120.0)[0] < 0.1 * primary.power_at_local(120.0)[0]

    def test_both_peaks_stable_nothing_removed(self):
        primary = _gaussian([50, 120], [1.0, 0.8])
        companion = _gaussian([52, 118], [0.9, 0.9])
        suppressed = suppress_multipath([primary, companion])
        assert suppressed.power_at_local(120.0)[0] == pytest.approx(
            primary.power_at_local(120.0)[0])

    def test_three_frame_group_requires_agreement_in_all(self):
        primary = _gaussian([50, 120], [1.0, 0.8])
        second = _gaussian([50, 121], [1.0, 0.8])
        third = _gaussian([50, 170], [1.0, 0.8])
        suppressed = MultipathSuppressor().suppress([primary, second, third])
        # 120-degree peak matches the second frame but not the third: removed.
        assert suppressed.power_at_local(120.0)[0] < 0.1 * primary.power_at_local(120.0)[0]

    def test_process_returns_one_spectrum_per_group(self):
        spectra = [_gaussian([50, 120], [1.0, 0.8], timestamp_s=t)
                   for t in (0.0, 0.03, 1.0)]
        outputs = MultipathSuppressor().process(spectra)
        assert len(outputs) == 2

    def test_process_groups_on_supplied_timestamps(self):
        spectra = [_gaussian([50, 120], [1.0, 0.8]) for _ in range(3)]
        outputs = MultipathSuppressor().process(
            spectra, timestamps=(0.0, 0.03, 1.0))
        assert len(outputs) == 2

    @pytest.mark.parametrize("kwargs", [
        {"residual_fraction": 1.5},
        {"tolerance_deg": -1.0},
        {"min_relative_height": -0.1},
        {"min_relative_height": 1.5},
        {"window_s": -0.1},
        {"max_group_size": 0},
        {"max_span_s": -1.0},
    ])
    def test_invalid_parameters(self, kwargs):
        # Bad values fail at construction/config-load time, not as a
        # confusing find_peaks error in the middle of a stream.
        with pytest.raises(EstimationError):
            MultipathSuppressor(**kwargs)
        with pytest.raises(EstimationError):
            MultipathSuppressor().suppress([])
