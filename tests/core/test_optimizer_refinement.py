"""Hill-climb edge cases and serial/vectorized refiner equality.

The vectorized refiner (:func:`repro.core.optimizer.refine_many`) promises
bit-for-bit identical results to the serial :func:`hill_climb` /
:func:`refine_from_seeds` reference -- same first-improvement tie-breaking,
same evaluation-budget accounting, same first-seed-wins selection.  These
tests pin down the edge cases that make that promise meaningful (budget
exhausted mid-neighbour-scan, plateaus, ties) on both implementations, and
assert end-to-end equality through :class:`repro.core.batch.BatchLocalizer`.
"""

import numpy as np
import pytest

from repro.core.batch import BatchLocalizer
from repro.core.localizer import LocalizerConfig
from repro.core.optimizer import hill_climb, refine_from_seeds, refine_many
from repro.core.spectrum import AoASpectrum, default_angle_grid
from repro.errors import EstimationError
from repro.geometry.vector import Point2D, bearing_deg


def _batch_adapter(functions):
    """Wrap per-unit scalar objectives as a refine_many batch evaluator."""

    def evaluate(units, xs, ys):
        return np.array([functions[unit](Point2D(x, y))
                         for unit, x, y in zip(units, xs, ys, strict=True)])

    return evaluate


def _assert_same(vectorized, serial):
    assert vectorized.position.x == serial.position.x
    assert vectorized.position.y == serial.position.y
    assert vectorized.value == serial.value
    assert vectorized.iterations == serial.iterations


class TestPlateauTermination:
    """Equal-value neighbours never move the climber; the step decays."""

    def test_serial_plateau_halves_until_min_step(self):
        flat = lambda p: 1.0  # noqa: E731
        result = hill_climb(flat, Point2D(2.0, 3.0),
                            initial_step_m=0.05, min_step_m=0.005)
        # Steps 0.05, 0.025, 0.0125, 0.00625 each scan all four neighbours
        # without improvement, then 0.003125 < min_step terminates.
        assert result.position == Point2D(2.0, 3.0)
        assert result.value == 1.0
        assert result.iterations == 1 + 4 * 4

    def test_vectorized_matches_serial_on_plateau(self):
        flat = lambda p: 1.0  # noqa: E731
        serial = refine_from_seeds(flat, [(Point2D(2.0, 3.0), 1.0)],
                                   initial_step_m=0.05, min_step_m=0.005)
        [vectorized] = refine_many(_batch_adapter([flat]),
                                   [[(Point2D(2.0, 3.0), 1.0)]],
                                   initial_step_m=0.05, min_step_m=0.005)
        _assert_same(vectorized, serial)


class TestEvaluationBudget:
    """max_evaluations stops the scan mid-neighbour, exactly."""

    def test_budget_exhausted_mid_scan_without_improvement(self):
        # Only the fourth probe direction (-y) improves, but the budget of
        # 3 dies after the second neighbour: the climber must stay put and
        # report exactly 3 evaluations.
        downhill = lambda p: -p.y  # noqa: E731
        result = hill_climb(downhill, Point2D(1.0, 1.0),
                            initial_step_m=0.1, min_step_m=0.01,
                            max_evaluations=3)
        assert result.position == Point2D(1.0, 1.0)
        assert result.iterations == 3

    def test_budget_final_evaluation_still_moves(self):
        # The improving -y neighbour is evaluated exactly on the budget
        # boundary (5th evaluation): the move is taken, then the climb ends.
        downhill = lambda p: -p.y  # noqa: E731
        result = hill_climb(downhill, Point2D(1.0, 1.0),
                            initial_step_m=0.1, min_step_m=0.01,
                            max_evaluations=5)
        assert result.position == Point2D(1.0, 1.0 - 0.1)
        assert result.iterations == 5

    @pytest.mark.parametrize("max_evaluations", [1, 2, 3, 4, 5, 6, 17, 40])
    def test_vectorized_matches_serial_at_every_budget(self, max_evaluations):
        downhill = lambda p: -p.y  # noqa: E731
        seeds = [(Point2D(1.0, 1.0), 0.0)]
        serial = hill_climb(downhill, Point2D(1.0, 1.0),
                            initial_step_m=0.1, min_step_m=0.01,
                            max_evaluations=max_evaluations)
        [vectorized] = refine_many(_batch_adapter([downhill]), [seeds],
                                   initial_step_m=0.1, min_step_m=0.01,
                                   max_evaluations=max_evaluations)
        _assert_same(vectorized, serial)


class TestTieBreaking:
    def test_first_improving_neighbour_wins_not_the_best(self):
        # +x improves by a little, -y by a lot; the serial scan takes +x
        # (first strict improvement) and the vectorized replay must too.
        biased = lambda p: p.x + (10.0 if p.y < 0.95 else 0.0)  # noqa: E731
        serial = hill_climb(biased, Point2D(1.0, 1.0),
                            initial_step_m=0.1, min_step_m=0.01,
                            max_evaluations=2)
        assert serial.position == Point2D(1.1, 1.0)
        [vectorized] = refine_many(_batch_adapter([biased]),
                                   [[(Point2D(1.0, 1.0), 0.0)]],
                                   initial_step_m=0.1, min_step_m=0.01,
                                   max_evaluations=2)
        _assert_same(vectorized, serial)

    def test_refine_from_seeds_first_seed_wins_ties(self):
        flat = lambda p: 1.0  # noqa: E731
        seeds = [(Point2D(0.0, 0.0), 1.0), (Point2D(5.0, 5.0), 1.0)]
        serial = refine_from_seeds(flat, seeds,
                                   initial_step_m=0.05, min_step_m=0.005)
        assert serial.position == Point2D(0.0, 0.0)
        [vectorized] = refine_many(_batch_adapter([flat]), [seeds],
                                   initial_step_m=0.05, min_step_m=0.005)
        _assert_same(vectorized, serial)


class TestRandomizedEquality:
    def test_many_units_many_seeds_bitwise_equal(self):
        rng = np.random.default_rng(42)
        functions = []
        seeds_by_unit = []
        for _ in range(7):
            centres = rng.uniform(0.0, 10.0, size=(3, 2))
            weights = rng.uniform(0.5, 2.0, size=3)
            widths = rng.uniform(0.5, 3.0, size=3)

            def objective(p, centres=centres, weights=weights, widths=widths):
                dx = centres[:, 0] - p.x
                dy = centres[:, 1] - p.y
                return float(np.sum(
                    weights * np.exp(-(dx * dx + dy * dy) / widths)))

            functions.append(objective)
            seeds_by_unit.append([
                (Point2D(rng.uniform(0, 10), rng.uniform(0, 10)),
                 rng.uniform())
                for _ in range(int(rng.integers(1, 4)))])
        vectorized = refine_many(_batch_adapter(functions), seeds_by_unit,
                                 initial_step_m=0.25, min_step_m=0.01)
        for function, seeds, result in zip(functions, seeds_by_unit,
                                           vectorized, strict=True):
            serial = refine_from_seeds(function, seeds,
                                       initial_step_m=0.25, min_step_m=0.01)
            _assert_same(result, serial)


class TestValidation:
    def test_rejects_bad_steps_and_empty_seeds(self):
        flat = lambda p: 1.0  # noqa: E731
        evaluate = _batch_adapter([flat])
        with pytest.raises(EstimationError):
            refine_many(evaluate, [[(Point2D(0, 0), 1.0)]],
                        initial_step_m=0.0)
        with pytest.raises(EstimationError):
            refine_many(evaluate, [[(Point2D(0, 0), 1.0)]],
                        initial_step_m=0.01, min_step_m=0.1)
        with pytest.raises(EstimationError):
            refine_many(evaluate, [[]])
        with pytest.raises(EstimationError):
            refine_many(evaluate, [[(Point2D(0, 0), 1.0)]],
                        max_evaluations=0)

    def test_rejects_misshapen_evaluator_output(self):
        bad = lambda units, xs, ys: np.zeros(xs.shape[0] + 1)  # noqa: E731
        with pytest.raises(EstimationError, match="shape"):
            refine_many(bad, [[(Point2D(0, 0), 1.0)]])


def _synthetic_clients(count, ragged=False, seed=7):
    """Per-client spectra over a few AP placements (Gaussian lobe + noise)."""
    rng = np.random.default_rng(seed)
    angles = default_angle_grid(1.0)
    placements = [(Point2D(0.5, 0.5), 0.0), (Point2D(19.5, 0.5), 90.0),
                  (Point2D(10.0, 11.5), 33.0), (Point2D(0.5, 11.5), 180.0)]
    clients = {}
    for index in range(count):
        position = Point2D(rng.uniform(1, 19), rng.uniform(1, 11))
        sites = placements if not ragged else placements[:2 + (index % 3)]
        spectra = []
        for ap_position, orientation_deg in sites:
            bearing = bearing_deg(ap_position, position)
            local = (angles - (bearing - orientation_deg)
                     + 180.0) % 360.0 - 180.0
            power = np.exp(-0.5 * (local / 10.0) ** 2) \
                + 0.05 * rng.random(angles.shape[0])
            spectra.append(AoASpectrum(angles, power, ap_position=ap_position,
                                       ap_orientation_deg=orientation_deg))
        if ragged and index % 2:
            spectra = spectra[::-1]
        clients[f"c{index}"] = spectra
    return clients


class TestBatchLocalizerEquality:
    """End to end: vectorized_refinement on/off gives identical estimates."""

    BOUNDS = (0.0, 0.0, 20.0, 12.0)

    @pytest.mark.parametrize("ragged", [False, True])
    @pytest.mark.parametrize("floor", [0.0, 0.05])
    def test_vectorized_refinement_is_bit_identical(self, ragged, floor):
        clients = _synthetic_clients(10, ragged=ragged)
        estimates = {}
        for vectorized in (True, False):
            config = LocalizerConfig(grid_resolution_m=0.5,
                                     spectrum_floor=floor,
                                     vectorized_refinement=vectorized)
            localizer = BatchLocalizer(self.BOUNDS, config)
            estimates[vectorized] = localizer.estimate_batch(clients)
        for key in clients:
            fast, reference = estimates[True][key], estimates[False][key]
            assert fast.position.x == reference.position.x
            assert fast.position.y == reference.position.y
            assert fast.likelihood == reference.likelihood
            assert fast.num_aps == reference.num_aps

    def test_vectorized_default_matches_single_client_estimate(self):
        clients = _synthetic_clients(5)
        config = LocalizerConfig(grid_resolution_m=0.5)
        assert config.vectorized_refinement  # on by default
        localizer = BatchLocalizer(self.BOUNDS, config)
        batched = localizer.estimate_batch(clients)
        for key, spectra in clients.items():
            single = localizer.estimate_batch({key: spectra})[key]
            assert batched[key].position == single.position
            assert batched[key].likelihood == single.likelihood

    def test_vectorized_refinement_flag_is_validated(self):
        with pytest.raises(EstimationError, match="vectorized_refinement"):
            LocalizerConfig(vectorized_refinement=1)
