"""Tests for the multipath channel container, builder and mobility helpers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.channel import (
    ChannelBuilder,
    ChannelModelConfig,
    MultipathChannel,
    movement_track,
    perturb_position,
    random_waypoint_track,
)
from repro.errors import ChannelError
from repro.geometry import Point2D, bearing_deg
from repro.geometry.vector import angle_difference_deg


class TestMultipathChannel:
    def test_from_bearings_mismatched_lengths(self):
        with pytest.raises(ChannelError):
            MultipathChannel.from_bearings([10.0], [1.0, 0.5])

    def test_direct_component_identified(self, two_path_channel):
        direct = two_path_channel.direct_component
        assert direct is not None and direct.azimuth_deg == pytest.approx(60.0)
        assert two_path_channel.direct_bearing_deg == pytest.approx(60.0)

    def test_total_power_sums_components(self):
        channel = MultipathChannel.from_bearings([0.0, 90.0], [1.0, 0.5])
        assert channel.total_power == pytest.approx(1.25)

    def test_strongest_component_and_dominance(self):
        channel = MultipathChannel.from_bearings([0.0, 90.0], [0.5, 1.0],
                                                 direct_index=0)
        assert channel.strongest_component.azimuth_deg == pytest.approx(90.0)
        assert not channel.direct_path_is_dominant()

    def test_without_direct_path(self, two_path_channel):
        nlos = two_path_channel.without_direct_path()
        assert nlos.direct_component is None
        assert len(nlos) == len(two_path_channel) - 1

    def test_scaled_preserves_bearings(self, two_path_channel):
        scaled = two_path_channel.scaled(0.5)
        assert np.allclose(scaled.bearings(), two_path_channel.bearings())
        assert scaled.total_power == pytest.approx(two_path_channel.total_power * 0.25)

    def test_rssi_is_integer_dbm(self):
        channel = MultipathChannel.from_bearings([0.0], [1e-3])
        rssi = channel.rssi_dbm(15.0)
        assert rssi == round(rssi)

    def test_empty_channel_strongest_raises(self):
        with pytest.raises(ChannelError):
            MultipathChannel().strongest_component


class TestChannelBuilder:
    def test_direct_component_bearing_matches_geometry(self, simple_room):
        builder = ChannelBuilder(simple_room, ChannelModelConfig(
            scatterers_per_reflection=0, max_reflections=1))
        client, ap = Point2D(5.0, 5.0), Point2D(15.0, 5.0)
        channel = builder.build(client, ap)
        direct = channel.direct_component
        assert direct is not None
        assert direct.azimuth_deg == pytest.approx(bearing_deg(ap, client))
        assert direct.elevation_deg == pytest.approx(0.0)

    def test_direct_power_decreases_with_distance(self, simple_room):
        builder = ChannelBuilder(simple_room, ChannelModelConfig(
            scatterers_per_reflection=0, max_reflections=0))
        ap = Point2D(1.0, 5.0)
        near = builder.build(Point2D(4.0, 5.0), ap).total_power
        far = builder.build(Point2D(18.0, 5.0), ap).total_power
        assert near > far

    def test_reflections_add_components(self, simple_room):
        config = ChannelModelConfig(scatterers_per_reflection=0)
        no_reflections = ChannelBuilder(
            simple_room, ChannelModelConfig(max_reflections=0,
                                            scatterers_per_reflection=0))
        with_reflections = ChannelBuilder(simple_room, config)
        client, ap = Point2D(5.0, 5.0), Point2D(15.0, 5.0)
        assert len(with_reflections.build(client, ap)) > len(no_reflections.build(client, ap))

    def test_height_offset_creates_elevation_and_longer_path(self, simple_room):
        flat = ChannelBuilder(simple_room, ChannelModelConfig(
            scatterers_per_reflection=0, max_reflections=0))
        raised = ChannelBuilder(simple_room, ChannelModelConfig(
            scatterers_per_reflection=0, max_reflections=0, height_offset_m=1.5))
        client, ap = Point2D(5.0, 5.0), Point2D(10.0, 5.0)
        flat_direct = flat.build(client, ap).direct_component
        raised_direct = raised.build(client, ap).direct_component
        assert raised_direct.elevation_deg > 0.0
        assert raised_direct.path_length_m > flat_direct.path_length_m

    def test_polarization_mismatch_reduces_power(self, simple_room):
        aligned = ChannelBuilder(simple_room, ChannelModelConfig(
            scatterers_per_reflection=0))
        crossed = ChannelBuilder(simple_room, ChannelModelConfig(
            scatterers_per_reflection=0, polarization_mismatch_deg=90.0))
        client, ap = Point2D(5.0, 5.0), Point2D(15.0, 5.0)
        ratio = (crossed.build(client, ap).total_power
                 / aligned.build(client, ap).total_power)
        assert ratio == pytest.approx(0.01, rel=0.05)  # 20 dB

    def test_scatterers_are_deterministic_for_fixed_environment(self, simple_room):
        config = ChannelModelConfig(scatterers_per_reflection=3)
        builder = ChannelBuilder(simple_room, config)
        client, ap = Point2D(5.0, 5.0), Point2D(15.0, 5.0)
        first = builder.build(client, ap)
        second = builder.build(client, ap)
        assert np.allclose(first.amplitudes(), second.amplitudes())
        assert np.allclose(first.bearings(), second.bearings())

    def test_small_movement_keeps_direct_bearing_stable(self, simple_room):
        builder = ChannelBuilder(simple_room, ChannelModelConfig())
        ap = Point2D(15.0, 5.0)
        before = builder.build(Point2D(5.0, 5.0), ap).direct_bearing_deg
        after = builder.build(Point2D(5.03, 5.03), ap).direct_bearing_deg
        assert angle_difference_deg(before, after) < 1.0

    def test_coincident_client_and_ap_rejected(self, simple_room):
        builder = ChannelBuilder(simple_room)
        with pytest.raises(Exception):
            builder.build(Point2D(5.0, 5.0), Point2D(5.0, 5.0))


class TestMobility:
    def test_perturb_distance(self, rng):
        start = Point2D(3.0, 4.0)
        moved = perturb_position(start, 0.05, rng=rng)
        assert start.distance_to(moved) == pytest.approx(0.05)

    def test_perturb_fixed_direction(self):
        moved = perturb_position(Point2D(0, 0), 1.0, direction_deg=90.0)
        assert moved.x == pytest.approx(0.0, abs=1e-12)
        assert moved.y == pytest.approx(1.0)

    def test_negative_distance_rejected(self):
        with pytest.raises(ChannelError):
            perturb_position(Point2D(0, 0), -0.1)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=20),
           st.floats(min_value=0.001, max_value=0.2))
    def test_movement_track_steps_bounded(self, num_samples, max_step):
        track = movement_track(Point2D(0, 0), num_samples, max_step_m=max_step,
                               rng=np.random.default_rng(0))
        assert len(track) == num_samples
        for a, b in zip(track, track[1:], strict=False):
            assert a.distance_to(b) <= max_step + 1e-12

    def test_random_waypoint_track_endpoints(self):
        track = random_waypoint_track(Point2D(0, 0), Point2D(10, 0), 11)
        assert track[0] == Point2D(0, 0)
        assert track[-1] == Point2D(10, 0)
        assert len(track) == 11
