"""Tests for path loss models and polarization mismatch."""

import pytest
from hypothesis import given, strategies as st

from repro.channel import (
    dbm_to_watts,
    free_space_amplitude,
    free_space_path_loss_db,
    log_distance_path_loss_db,
    polarization_amplitude,
    polarization_loss_db,
    received_power_dbm,
    watts_to_dbm,
)
from repro.errors import ChannelError

distances = st.floats(min_value=0.2, max_value=200.0,
                      allow_nan=False, allow_infinity=False)


class TestPathLoss:
    def test_free_space_loss_at_2_4ghz(self):
        # Classic figure: ~40 dB at one metre for 2.4 GHz.
        assert free_space_path_loss_db(1.0) == pytest.approx(40.2, abs=0.5)

    def test_free_space_loss_increases_6db_per_doubling(self):
        assert (free_space_path_loss_db(20.0) - free_space_path_loss_db(10.0)
                == pytest.approx(6.02, abs=0.01))

    def test_invalid_distance_rejected(self):
        with pytest.raises(ChannelError):
            free_space_path_loss_db(0.0)

    def test_amplitude_matches_loss(self):
        loss = free_space_path_loss_db(7.0)
        assert free_space_amplitude(7.0) == pytest.approx(10 ** (-loss / 20))

    @given(distances)
    def test_log_distance_exceeds_free_space_indoors(self, distance):
        if distance < 1.0:
            return
        indoor = log_distance_path_loss_db(distance, path_loss_exponent=3.0)
        free = free_space_path_loss_db(distance)
        assert indoor >= free - 1e-6

    def test_log_distance_shadowing_is_reproducible(self):
        import numpy as np
        a = log_distance_path_loss_db(10.0, shadowing_sigma_db=4.0,
                                      rng=np.random.default_rng(1))
        b = log_distance_path_loss_db(10.0, shadowing_sigma_db=4.0,
                                      rng=np.random.default_rng(1))
        assert a == pytest.approx(b)

    def test_received_power(self):
        assert received_power_dbm(15.0, 70.0) == pytest.approx(-55.0)

    def test_dbm_watt_round_trip(self):
        assert watts_to_dbm(dbm_to_watts(-30.0)) == pytest.approx(-30.0)
        with pytest.raises(ChannelError):
            watts_to_dbm(0.0)


class TestPolarization:
    def test_paper_figures(self):
        # Section 4.3.2: 45 degrees -> ~3 dB, 90 degrees -> 20 dB or more.
        assert polarization_loss_db(45.0) == pytest.approx(3.0, abs=0.1)
        assert polarization_loss_db(90.0) == pytest.approx(20.0)

    def test_aligned_antennas_have_no_loss(self):
        assert polarization_loss_db(0.0) == pytest.approx(0.0)
        assert polarization_amplitude(0.0) == pytest.approx(1.0)

    @given(st.floats(min_value=0.0, max_value=180.0))
    def test_loss_is_bounded_by_discrimination(self, mismatch):
        loss = polarization_loss_db(mismatch)
        assert 0.0 <= loss <= 20.0

    def test_amplitude_matches_loss(self):
        loss = polarization_loss_db(30.0)
        assert polarization_amplitude(30.0) == pytest.approx(10 ** (-loss / 20))
