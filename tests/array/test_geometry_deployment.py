"""Tests for array geometries, steering vectors and deployed arrays."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.array import ArrayGeometry, DeployedArray
from repro.constants import ANTENNA_SPACING_M, WAVELENGTH_M
from repro.errors import ArrayError
from repro.geometry import Point2D

azimuths = st.floats(min_value=0.0, max_value=360.0,
                     allow_nan=False, allow_infinity=False)


class TestArrayGeometry:
    def test_uniform_linear_spacing(self):
        geometry = ArrayGeometry.uniform_linear(8)
        positions = geometry.element_positions
        spacings = np.diff(positions[:, 0])
        assert np.allclose(spacings, ANTENNA_SPACING_M)
        assert np.allclose(positions[:, 1], 0.0)
        assert geometry.is_linear()

    def test_too_few_elements_rejected(self):
        with pytest.raises(ArrayError):
            ArrayGeometry.uniform_linear(1)

    def test_symmetry_antenna_breaks_linearity(self):
        geometry = ArrayGeometry.linear_with_symmetry_antenna(8)
        assert geometry.num_elements == 9
        assert not geometry.is_linear()

    def test_rectangular_and_circular_constructors(self):
        rect = ArrayGeometry.rectangular(2, 8)
        assert rect.num_elements == 16
        circle = ArrayGeometry.circular(8)
        assert circle.num_elements == 8
        assert not circle.is_linear()

    def test_steering_vector_is_unit_modulus(self, ula8):
        vector = ula8.steering_vector(37.0)
        assert vector.shape == (8,)
        assert np.allclose(np.abs(vector), 1.0)

    def test_steering_vector_reference_element_has_zero_phase(self, ula8):
        vector = ula8.steering_vector(123.0)
        assert vector[0] == pytest.approx(1.0 + 0.0j)

    def test_ula_steering_matches_cos_theta_formula(self, ula8):
        azimuth = 70.0
        vector = ula8.steering_vector(azimuth, wavelength_m=WAVELENGTH_M)
        expected_phase = (2 * np.pi / WAVELENGTH_M * ANTENNA_SPACING_M
                          * np.cos(np.radians(azimuth)) * np.arange(8))
        assert np.allclose(np.angle(vector * np.exp(-1j * expected_phase)), 0.0,
                           atol=1e-9)

    @given(azimuths)
    def test_linear_array_mirror_ambiguity(self, azimuth):
        """A ULA cannot distinguish theta from -theta (Section 2.3.4)."""
        geometry = ArrayGeometry.uniform_linear(8)
        a = geometry.steering_vector(azimuth)
        b = geometry.steering_vector(-azimuth)
        assert np.allclose(a, b, atol=1e-9)

    @given(azimuths)
    def test_symmetry_antenna_resolves_mirror(self, azimuth):
        geometry = ArrayGeometry.linear_with_symmetry_antenna(8)
        a = geometry.steering_vector(azimuth)
        b = geometry.steering_vector(-azimuth)
        if np.sin(np.radians(azimuth)) ** 2 < 1e-3:
            return  # On the array axis the two directions truly coincide.
        assert not np.allclose(a, b, atol=1e-6)

    def test_elevation_shrinks_phase_progression(self, ula8):
        flat = np.angle(ula8.steering_vector(40.0))
        tilted = np.angle(ula8.steering_vector(40.0, elevation_deg=30.0))
        assert abs(tilted[1]) < abs(flat[1])

    def test_subarray_selects_elements(self, ula8):
        sub = ula8.subarray([0, 1, 2])
        assert sub.num_elements == 3
        assert np.allclose(sub.element_positions, ula8.element_positions[:3])
        with pytest.raises(ArrayError):
            ula8.subarray([0])
        with pytest.raises(ArrayError):
            ula8.subarray([0, 99])

    def test_aperture(self, ula8):
        assert ula8.aperture_m == pytest.approx(7 * ANTENNA_SPACING_M)


class TestDeployedArray:
    def test_phase_offsets_default_to_zero(self, ula8):
        array = DeployedArray(ula8)
        assert np.allclose(array.phase_offsets_rad, 0.0)
        assert np.allclose(array.phase_offset_factors, 1.0)

    def test_phase_offsets_shape_validated(self, ula8):
        with pytest.raises(ArrayError):
            DeployedArray(ula8, phase_offsets_rad=np.zeros(3))

    def test_local_global_azimuth_round_trip(self, ula8):
        array = DeployedArray(ula8, orientation_deg=50.0)
        assert array.local_azimuth_deg(70.0) == pytest.approx(20.0)
        assert array.global_azimuth_deg(20.0) == pytest.approx(70.0)

    def test_bearing_to_point(self, ula8):
        array = DeployedArray(ula8, position=Point2D(0, 0), orientation_deg=90.0)
        # A point due north is at 90 global, i.e. 0 in the local frame.
        assert array.bearing_to(Point2D(0.0, 5.0)) == pytest.approx(0.0)

    def test_steering_vector_global_uses_orientation(self, ula8):
        plain = DeployedArray(ula8, orientation_deg=0.0)
        rotated = DeployedArray(ula8, orientation_deg=30.0)
        assert np.allclose(plain.steering_vector_global(40.0),
                           rotated.steering_vector_global(70.0))

    def test_with_subarray_keeps_offsets(self, ula8):
        offsets = np.linspace(0, 1, 8)
        array = DeployedArray(ula8, phase_offsets_rad=offsets)
        sub = array.with_subarray([0, 2, 4])
        assert np.allclose(sub.phase_offsets_rad, offsets[[0, 2, 4]])

    def test_calibrated_removes_known_offsets(self, ula8):
        offsets = np.linspace(0.1, 1.2, 8)
        array = DeployedArray(ula8, phase_offsets_rad=offsets)
        residual = array.calibrated(offsets)
        assert np.allclose(residual.phase_offsets_rad, 0.0)

    def test_random_phase_offsets_in_range(self):
        offsets = DeployedArray.random_phase_offsets(16, np.random.default_rng(0))
        assert offsets.shape == (16,)
        assert np.all((offsets >= 0) & (offsets < 2 * np.pi))
