"""Tests for phase calibration, the snapshot receiver and diversity synthesis."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.array import (
    ArrayGeometry,
    ArrayReceiver,
    DeployedArray,
    DiversitySynthesizer,
    PhaseCalibrator,
    SnapshotMatrix,
    usable_snapshots_per_symbol,
)
from repro.channel import MultipathChannel
from repro.errors import ArrayError, ChannelError


class TestPhaseCalibrator:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=2 ** 31 - 1))
    def test_swap_procedure_recovers_internal_offsets(self, seed):
        """Equations 9-12: the two-run swap cancels cable imperfections."""
        rng = np.random.default_rng(seed)
        geometry = ArrayGeometry.uniform_linear(8)
        true_offsets = DeployedArray.random_phase_offsets(8, rng)
        array = DeployedArray(geometry, phase_offsets_rad=true_offsets)
        calibrator = PhaseCalibrator(8, rng=rng)
        result = calibrator.calibrate(array)
        residual = result.residual_error_rad(true_offsets)
        assert np.max(np.abs(residual)) < 1e-6

    def test_single_run_is_biased_by_external_paths(self):
        rng = np.random.default_rng(0)
        geometry = ArrayGeometry.uniform_linear(4)
        true_offsets = np.array([0.0, 0.3, -0.4, 1.0])
        array = DeployedArray(geometry, phase_offsets_rad=true_offsets)
        imbalance = np.array([0.0, 0.2, -0.1, 0.15])
        calibrator = PhaseCalibrator(4, external_path_imbalance_rad=imbalance, rng=rng)
        single = calibrator.measure(array).measured_offsets_rad
        # The single measurement is off by exactly the external imbalance.
        assert np.allclose(single, (true_offsets - true_offsets[0]) + imbalance,
                           atol=1e-9)

    def test_measurement_noise_degrades_gracefully(self):
        rng = np.random.default_rng(1)
        geometry = ArrayGeometry.uniform_linear(8)
        true_offsets = DeployedArray.random_phase_offsets(8, rng)
        array = DeployedArray(geometry, phase_offsets_rad=true_offsets)
        calibrator = PhaseCalibrator(8, measurement_noise_rad=np.radians(2.0), rng=rng)
        residual = calibrator.calibrate(array).residual_error_rad(true_offsets)
        assert np.max(np.abs(residual)) < np.radians(10.0)

    def test_too_few_radios_rejected(self):
        with pytest.raises(ArrayError):
            PhaseCalibrator(1)


class TestArrayReceiver:
    def test_noiseless_response_matches_manual_sum(self, deployed_ula8, two_path_channel):
        receiver = ArrayReceiver(deployed_ula8, apply_phase_offsets=False)
        response = receiver.noiseless_response(two_path_channel)
        manual = sum(c.amplitude * deployed_ula8.steering_vector_global(c.azimuth_deg)
                     for c in two_path_channel)
        assert np.allclose(response, manual)

    def test_phase_offsets_applied_when_enabled(self, ula8, two_path_channel):
        offsets = np.linspace(0.0, 2.0, 8)
        array = DeployedArray(ula8, phase_offsets_rad=offsets)
        clean = ArrayReceiver(array, apply_phase_offsets=False).noiseless_response(
            two_path_channel)
        dirty = ArrayReceiver(array, apply_phase_offsets=True).noiseless_response(
            two_path_channel)
        assert np.allclose(dirty, clean * np.exp(1j * offsets))

    def test_capture_shape_and_metadata(self, deployed_ula8, two_path_channel, rng):
        receiver = ArrayReceiver(deployed_ula8, apply_phase_offsets=False)
        snapshots = receiver.capture(two_path_channel, num_snapshots=12,
                                     snr_db=20.0, rng=rng, timestamp_s=1.5)
        assert snapshots.samples.shape == (8, 12)
        assert snapshots.num_antennas == 8
        assert snapshots.num_snapshots == 12
        assert snapshots.timestamp_s == pytest.approx(1.5)
        assert snapshots.client_id == "client"

    def test_capture_snr_is_respected(self, deployed_ula8, two_path_channel):
        rng = np.random.default_rng(7)
        receiver = ArrayReceiver(deployed_ula8, apply_phase_offsets=False)
        clean = np.outer(receiver.noiseless_response(two_path_channel), np.ones(2000))
        snapshots = receiver.capture(two_path_channel, num_snapshots=2000,
                                     snr_db=10.0,
                                     transmit_samples=np.ones(2000, dtype=complex),
                                     rng=rng)
        noise = snapshots.samples - clean
        measured_snr = 10 * np.log10(np.mean(np.abs(clean) ** 2)
                                     / np.mean(np.abs(noise) ** 2))
        assert measured_snr == pytest.approx(10.0, abs=0.5)

    def test_empty_channel_rejected(self, deployed_ula8):
        receiver = ArrayReceiver(deployed_ula8)
        with pytest.raises(ChannelError):
            receiver.noiseless_response(MultipathChannel())

    def test_select_antennas(self, capture_snapshots):
        subset = capture_snapshots.select_antennas([0, 3, 5])
        assert subset.samples.shape[0] == 3
        assert np.allclose(subset.samples[1], capture_snapshots.samples[3])


class TestDiversitySynthesizer:
    def test_switching_dead_time_budget(self):
        # 3.2 us symbol minus 500 ns dead time at 40 Msps leaves >100 samples.
        assert usable_snapshots_per_symbol() > 100

    def test_overlapping_sets_rejected(self, ula8):
        array = DeployedArray(ArrayGeometry.linear_with_symmetry_antenna(8))
        with pytest.raises(ArrayError):
            DiversitySynthesizer(array, [0, 1, 2], [2, 8])

    def test_capture_stacks_both_sets(self, two_path_channel, rng):
        array = DeployedArray(ArrayGeometry.linear_with_symmetry_antenna(8))
        synthesizer = DiversitySynthesizer(array, list(range(8)), [8])
        snapshots = synthesizer.capture(two_path_channel, num_snapshots=10,
                                        snr_db=30.0, rng=rng)
        assert snapshots.samples.shape == (9, 10)

    def test_synthesized_rows_consistent_with_simultaneous_capture(self,
                                                                   two_path_channel):
        """Within the coherence time the switched capture equals a joint one."""
        rng = np.random.default_rng(5)
        array = DeployedArray(ArrayGeometry.linear_with_symmetry_antenna(8))
        synthesizer = DiversitySynthesizer(array, list(range(8)), [8])
        switched = synthesizer.capture(two_path_channel, num_snapshots=100,
                                       snr_db=35.0, rng=rng)
        receiver = ArrayReceiver(array, apply_phase_offsets=True)
        joint = receiver.capture(two_path_channel, num_snapshots=100, snr_db=35.0,
                                 rng=np.random.default_rng(6))
        # Compare the per-antenna-pair phase differences of the two captures.
        def pair_phase(samples):
            return np.angle(np.mean(samples[1:, :] * np.conj(samples[:-1, :]), axis=1))
        assert np.allclose(pair_phase(switched.samples), pair_phase(joint.samples),
                           atol=0.1)

    def test_too_many_snapshots_rejected(self, two_path_channel, rng):
        array = DeployedArray(ArrayGeometry.linear_with_symmetry_antenna(8))
        synthesizer = DiversitySynthesizer(array, list(range(8)), [8])
        with pytest.raises(ArrayError):
            synthesizer.capture(two_path_channel, num_snapshots=10_000, rng=rng)

    def test_snapshot_matrix_validation(self):
        with pytest.raises(ArrayError):
            SnapshotMatrix(np.zeros(5))
