"""Shared fixtures for the ArrayTrack reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.array import ArrayGeometry, ArrayReceiver, DeployedArray
from repro.channel import MultipathChannel
from repro.geometry import Point2D, rectangular_room
from repro.testbed import build_office_testbed


@pytest.fixture
def rng():
    """A deterministic random generator for reproducible tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def ula8():
    """An eight-element half-wavelength uniform linear array geometry."""
    return ArrayGeometry.uniform_linear(8)


@pytest.fixture
def deployed_ula8(ula8):
    """An eight-element ULA deployed at the origin with zero orientation."""
    return DeployedArray(ula8, position=Point2D(0.0, 0.0), orientation_deg=0.0)


@pytest.fixture
def simple_room():
    """A 20 m x 10 m drywall room used by channel/localization tests."""
    return rectangular_room(20.0, 10.0, "drywall", name="test-room")


@pytest.fixture
def two_path_channel():
    """A coherent two-path channel: direct at 60 deg, reflection at 120 deg."""
    return MultipathChannel.from_bearings(
        [60.0, 120.0], [1.0, 0.6 * np.exp(0.7j)], direct_index=0,
        client_id="client", ap_id="ap")


@pytest.fixture
def capture_snapshots(deployed_ula8, two_path_channel, rng):
    """Ten noisy snapshots of the two-path channel on the 8-element ULA."""
    receiver = ArrayReceiver(deployed_ula8, apply_phase_offsets=False)
    return receiver.capture(two_path_channel, num_snapshots=10, snr_db=25.0, rng=rng)


@pytest.fixture(scope="session")
def office_testbed():
    """The full 41-client office testbed (session-scoped: it is immutable)."""
    return build_office_testbed()
